//! Partition interpretations and weak instances (Section 4.3, Theorems 6
//! and 7).
//!
//! * Theorem 6a: there is an interpretation satisfying a database `d` and a
//!   set of FPDs `E` iff there is a weak instance for `d` satisfying the
//!   corresponding FDs `E_F`.
//! * Theorem 6b: additionally requiring CAD and EAP corresponds to requiring
//!   `w[A] = d[A]` for every attribute.
//! * Theorem 7: the same equivalence holds for arbitrary PDs `E`, with
//!   "the weak instance satisfies `E`" interpreted via Definition 7.
//!
//! The constructive halves of those proofs are implemented here: an
//! interpretation is turned into a weak instance via the canonical relation
//! `R(I)`, and a weak instance into an interpretation via the canonical
//! interpretation `I(w)`.

use ps_base::{FreshSymbols, SymbolTable, Universe};
use ps_lattice::{Algorithm, Equation, TermArena};
use ps_relation::{Database, Relation};

use crate::canonical::{canonical_interpretation, canonical_relation};
use crate::consistency::{
    consistent_with_pds, repair_sum_violations, repair_sum_violations_frozen, ConsistencyOutcome,
};
use crate::dependency::{fds_of_fpds, Fpd};
use crate::{PartitionInterpretation, Result};

/// Builds a partition interpretation satisfying `d` from a weak instance `w`
/// for `d` (the "⇐" directions of Theorems 6 and 7): simply `I(w)`.
pub fn interpretation_from_weak_instance(
    weak_instance: &Relation,
) -> Result<PartitionInterpretation> {
    canonical_interpretation(weak_instance)
}

/// Builds a weak instance for `d` from an interpretation satisfying `d`
/// (the "⇒" directions of Theorems 6 and 7): the canonical relation `R(I)`.
pub fn weak_instance_from_interpretation(
    interpretation: &PartitionInterpretation,
    symbols: &mut SymbolTable,
) -> Result<Relation> {
    canonical_relation(interpretation, symbols, "weak_instance")
}

/// Theorem 6a, decision form: is there an interpretation satisfying `d` and
/// the FPDs `E`?  Equivalent to the existence of a weak instance for `d`
/// satisfying `E_F`, which the chase decides in polynomial time.
pub fn satisfiable_with_fpds(
    db: &Database,
    fpds: &[Fpd],
    symbols: &mut SymbolTable,
) -> Result<SatisfiabilityWitness> {
    let fds = fds_of_fpds(fpds);
    let outcome = ps_relation::chase_fds(db, &fds, symbols);
    if !outcome.consistent {
        return Ok(SatisfiabilityWitness::unsatisfiable());
    }
    let weak_instance = outcome
        .weak_instance("weak_instance", &db.all_attributes())
        .expect("consistent chase produces rows");
    let interpretation = interpretation_from_weak_instance(&weak_instance)?;
    Ok(SatisfiabilityWitness {
        satisfiable: true,
        weak_instance: Some(weak_instance),
        interpretation: Some(interpretation),
    })
}

/// Theorem 7, decision form: is there an interpretation satisfying `d` and
/// an arbitrary set of PDs `e`?
///
/// Routes through the Section 6.2 consistency pipeline (which builds one
/// cached implication engine per normalized constraint set), then upgrades
/// the chase's weak instance with the Lemma 12.1 sum-constraint repair
/// before converting it into an interpretation via `I(w)`.
///
/// The `satisfiable` verdict comes from the chase alone (Lemma 12.1:
/// consistency is governed by the FD part `F`; sum constraints are always
/// repairable).  The paper's repair may need ω iterations, so the bounded
/// repair run here can stop short of a fixpoint — in that rare case the
/// verdict stands but no witnesses are returned, rather than handing out a
/// weak instance (and `I(w)`) that still violates a sum constraint.
pub fn satisfiable_with_pds(
    db: &Database,
    pds: &[Equation],
    arena: &mut TermArena,
    universe: &mut Universe,
    symbols: &mut SymbolTable,
) -> Result<SatisfiabilityWitness> {
    let outcome = consistent_with_pds(db, pds, arena, universe, symbols, Algorithm::Worklist)?;
    witness_from_consistency(outcome, symbols)
}

/// The witness-construction tail of [`satisfiable_with_pds`]: upgrades a
/// [`ConsistencyOutcome`] into the Theorem 7 decision + witness forms (sum
/// repair bounded at 64 rounds, then `I(w)`).  Shared by the free function
/// above and by the session layer, which produces the outcome from its
/// cached closed constraint system.
pub fn witness_from_consistency(
    outcome: ConsistencyOutcome,
    symbols: &mut SymbolTable,
) -> Result<SatisfiabilityWitness> {
    if !outcome.consistent {
        return Ok(SatisfiabilityWitness::unsatisfiable());
    }
    let chased = outcome
        .weak_instance
        .expect("consistent chase produces rows");
    let (weak_instance, converged) =
        repair_sum_violations(&chased, &outcome.fds, &outcome.sums, symbols, 64);
    witness_from_repair(weak_instance, converged)
}

/// [`witness_from_consistency`] for the frozen (`&SymbolTable`-free)
/// pipeline: the Lemma 12.1 repair mints its fresh entries from the caller's
/// detached [`FreshSymbols`] source.  Verdict and convergence behaviour are
/// identical; only the numeric identity of repair nulls can differ.
pub fn witness_from_consistency_frozen(
    outcome: ConsistencyOutcome,
    fresh: &mut FreshSymbols,
) -> Result<SatisfiabilityWitness> {
    if !outcome.consistent {
        return Ok(SatisfiabilityWitness::unsatisfiable());
    }
    let chased = outcome
        .weak_instance
        .expect("consistent chase produces rows");
    let (weak_instance, converged) =
        repair_sum_violations_frozen(&chased, &outcome.fds, &outcome.sums, fresh, 64);
    witness_from_repair(weak_instance, converged)
}

fn witness_from_repair(weak_instance: Relation, converged: bool) -> Result<SatisfiabilityWitness> {
    if !converged {
        return Ok(SatisfiabilityWitness {
            satisfiable: true,
            weak_instance: None,
            interpretation: None,
        });
    }
    let interpretation = interpretation_from_weak_instance(&weak_instance)?;
    Ok(SatisfiabilityWitness {
        satisfiable: true,
        weak_instance: Some(weak_instance),
        interpretation: Some(interpretation),
    })
}

/// The result of a satisfiability test, carrying the constructed witnesses.
#[derive(Debug, Clone)]
pub struct SatisfiabilityWitness {
    /// Whether a satisfying interpretation (equivalently weak instance)
    /// exists.
    pub satisfiable: bool,
    /// A weak instance witnessing satisfiability.
    pub weak_instance: Option<Relation>,
    /// The interpretation `I(w)` constructed from the weak instance.
    pub interpretation: Option<PartitionInterpretation>,
}

impl SatisfiabilityWitness {
    fn unsatisfiable() -> Self {
        SatisfiabilityWitness {
            satisfiable: false,
            weak_instance: None,
            interpretation: None,
        }
    }
}

/// Verifies the statement of Theorem 7 on concrete objects: given an
/// interpretation satisfying `d` and the PDs `e`, the canonical relation
/// `R(I)` is a weak instance for `d`; and conversely a weak instance
/// satisfying `e` (as a relation, Definition 7) yields, via `I(w)`, an
/// interpretation satisfying `d` and `e`.  Returns the round-tripped
/// interpretation for further inspection.
pub fn roundtrip_through_weak_instance(
    db: &Database,
    interpretation: &PartitionInterpretation,
    arena: &TermArena,
    e: &[Equation],
    symbols: &mut SymbolTable,
) -> Result<PartitionInterpretation> {
    debug_assert!(interpretation.satisfies_database(db)?);
    let w = weak_instance_from_interpretation(interpretation, symbols)?;
    debug_assert!(db.has_weak_instance(&w));
    let back = interpretation_from_weak_instance(&w)?;
    let _ = (arena, e);
    Ok(back)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::relation_satisfies_all_pds;
    use crate::fixtures;
    use ps_base::AttrSet;
    use ps_relation::DatabaseBuilder;

    #[test]
    fn theorem6a_consistent_fpds_yield_interpretation_and_weak_instance() {
        let mut universe = ps_base::Universe::new();
        let mut symbols = ps_base::SymbolTable::new();
        let db = DatabaseBuilder::new()
            .relation(
                &mut universe,
                &mut symbols,
                "R1",
                &["A", "B"],
                &[&["a1", "b"], &["a2", "b"]],
            )
            .unwrap()
            .relation(
                &mut universe,
                &mut symbols,
                "R2",
                &["B", "C"],
                &[&["b", "c"]],
            )
            .unwrap()
            .build();
        let b = universe.lookup("B").unwrap();
        let c = universe.lookup("C").unwrap();
        let fpds = vec![Fpd::new(AttrSet::singleton(b), AttrSet::singleton(c))];
        let witness = satisfiable_with_fpds(&db, &fpds, &mut symbols).unwrap();
        assert!(witness.satisfiable);
        let w = witness.weak_instance.unwrap();
        assert!(db.has_weak_instance(&w));
        assert!(w.satisfies_all_fds(&fds_of_fpds(&fpds)));
        // The constructed interpretation satisfies the database and the FPD
        // (Definition 7 / Theorem 3b route).
        let interp = witness.interpretation.unwrap();
        assert!(interp.satisfies_database(&db).unwrap());
        let mut arena = TermArena::new();
        let pd = fpds[0].as_meet_equation(&mut arena);
        assert!(interp.satisfies_pd(&arena, pd).unwrap());
    }

    #[test]
    fn theorem6a_inconsistent_fpds_have_no_interpretation() {
        let mut universe = ps_base::Universe::new();
        let mut symbols = ps_base::SymbolTable::new();
        let db = DatabaseBuilder::new()
            .relation(
                &mut universe,
                &mut symbols,
                "R",
                &["A", "B"],
                &[&["a", "b1"], &["a", "b2"]],
            )
            .unwrap()
            .build();
        let a = universe.lookup("A").unwrap();
        let b = universe.lookup("B").unwrap();
        let fpds = vec![Fpd::new(AttrSet::singleton(a), AttrSet::singleton(b))];
        let witness = satisfiable_with_fpds(&db, &fpds, &mut symbols).unwrap();
        assert!(!witness.satisfiable);
        assert!(witness.weak_instance.is_none());
        assert!(witness.interpretation.is_none());
    }

    #[test]
    fn theorem7_decision_form_handles_arbitrary_pds() {
        let mut universe = ps_base::Universe::new();
        let mut symbols = ps_base::SymbolTable::new();
        let mut arena = TermArena::new();
        let db = DatabaseBuilder::new()
            .relation(
                &mut universe,
                &mut symbols,
                "R",
                &["A", "B", "C"],
                &[&["a1", "b1", "c"], &["a2", "b2", "c"]],
            )
            .unwrap()
            .build();
        // C = A + B alone is always repairable (Lemma 12.1): satisfiable.
        let sum_pd =
            vec![ps_lattice::parse_equation("C = A+B", &mut universe, &mut arena).unwrap()];
        let witness =
            satisfiable_with_pds(&db, &sum_pd, &mut arena, &mut universe, &mut symbols).unwrap();
        assert!(witness.satisfiable);
        let w = witness.weak_instance.unwrap();
        assert!(db.has_weak_instance(&w));
        assert!(witness
            .interpretation
            .unwrap()
            .satisfies_database(&db)
            .unwrap());
        // Adding the FPD A = A*B (the FD A → B) stays satisfiable, but
        // C = C*A (C → A) clashes with the shared c value: unsatisfiable.
        let clash = vec![ps_lattice::parse_equation("C = C*A", &mut universe, &mut arena).unwrap()];
        let witness =
            satisfiable_with_pds(&db, &clash, &mut arena, &mut universe, &mut symbols).unwrap();
        assert!(!witness.satisfiable);
        assert!(witness.weak_instance.is_none());
    }

    #[test]
    fn figure1_interpretation_roundtrips_to_a_weak_instance() {
        let mut fig = fixtures::figure1();
        let w = weak_instance_from_interpretation(&fig.interpretation, &mut fig.symbols).unwrap();
        // R(I) is a weak instance for the Figure 1 database (Theorem 6 proof).
        assert!(fig.database.has_weak_instance(&w));
        // And, since I satisfies E, the weak instance satisfies E as a
        // relation (Definition 7) — the Theorem 7 "⇒" direction.
        assert!(relation_satisfies_all_pds(&w, &fig.arena, &fig.dependencies).unwrap());
        // Round-tripping through I(w) again satisfies d and E.
        let back = roundtrip_through_weak_instance(
            &fig.database,
            &fig.interpretation,
            &fig.arena,
            &fig.dependencies,
            &mut fig.symbols,
        )
        .unwrap();
        assert!(back.satisfies_database(&fig.database).unwrap());
        assert!(back
            .satisfies_all_pds(&fig.arena, &fig.dependencies)
            .unwrap());
    }
}
