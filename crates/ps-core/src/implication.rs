//! Implication of partition dependencies (Section 5).
//!
//! Theorem 8 identifies five statements; in particular
//! `E ⊨_rel δ  ⇔  E ⊨_lat δ`, so PD implication over (finite or infinite)
//! relations is exactly the uniform word problem for lattices, decided in
//! polynomial time by algorithm ALG (Theorem 9).  This module is the façade
//! the rest of the workspace uses:
//!
//! * [`pd_implies`] — does `E` imply a PD?
//! * [`pd_implies_fpd`] — convenience for FPD goals;
//! * [`pd_implies_with`] / [`pd_implies_fpd_with`] — the same questions
//!   answered by a cached [`ImplicationEngine`], for callers with many goals
//!   over one constraint set;
//! * [`is_identity`] — Theorem 10's special case `E = ∅`, decided by the
//!   free-lattice order;
//! * [`atom_order_closure`] / [`atom_order_closure_with`] — all consequences
//!   of the form `A ≤ B` between attributes as a hash set, the building
//!   block of the Section 6.2 consistency pipeline.

use std::collections::HashSet;

use ps_base::Attribute;
use ps_lattice::{
    free_order, word_problem, Algorithm, Equation, ImplicationEngine, TermArena, TermId, TermNode,
};

use crate::dependency::Fpd;

/// Does the set of PDs `e` imply the PD `goal`?  (Theorems 8 and 9.)
///
/// Rebuilds the derived order from scratch; when testing many goals against
/// the same `e`, build one [`ImplicationEngine`] and use [`pd_implies_with`]
/// instead.
pub fn pd_implies(arena: &TermArena, e: &[Equation], goal: Equation, algorithm: Algorithm) -> bool {
    word_problem::entails(arena, e, goal, algorithm)
}

/// Does the engine's constraint set imply the PD `goal`?  The cached variant
/// of [`pd_implies`]: the engine's saturated closure is reused, growing only
/// by the goal's own subterms.
pub fn pd_implies_with(engine: &mut ImplicationEngine, arena: &TermArena, goal: Equation) -> bool {
    engine.entails_goal(arena, goal)
}

/// Does the set of PDs `e` imply the FPD `goal`?
pub fn pd_implies_fpd(
    arena: &mut TermArena,
    e: &[Equation],
    goal: &Fpd,
    algorithm: Algorithm,
) -> bool {
    let goal_equation = goal.as_meet_equation(arena);
    word_problem::entails(arena, e, goal_equation, algorithm)
}

/// Does the engine's constraint set imply the FPD `goal`?  The cached
/// variant of [`pd_implies_fpd`].
pub fn pd_implies_fpd_with(
    engine: &mut ImplicationEngine,
    arena: &mut TermArena,
    goal: &Fpd,
) -> bool {
    let goal_equation = goal.as_meet_equation(arena);
    engine.entails_goal(arena, goal_equation)
}

/// Is the PD an identity — true in every partition interpretation
/// (equivalently, in every lattice with constants)?  Decided by the
/// free-lattice order of Theorem 10, without running ALG.
pub fn is_identity(arena: &TermArena, pd: Equation) -> bool {
    free_order::is_identity(arena, pd)
}

/// All pairs of attributes `(A, B)` with `A ≤ B` derivable from `e`
/// (including any attribute of `extra_attributes` even if it does not occur
/// in `e`).  This is the closure `E⁺` restricted to atoms used by the
/// consistency test of Section 6.2, returned as a hash set so callers can
/// test membership in O(1) instead of scanning.
pub fn atom_order_closure(
    arena: &mut TermArena,
    e: &[Equation],
    extra_attributes: &[Attribute],
    algorithm: Algorithm,
) -> HashSet<(Attribute, Attribute)> {
    let extra_terms: Vec<_> = extra_attributes.iter().map(|&a| arena.atom(a)).collect();
    let order = word_problem::DerivedOrder::build(arena, e, &extra_terms, algorithm);
    atom_pairs(arena, order.atom_consequences(arena))
}

/// The cached variant of [`atom_order_closure`]: reads the atom consequences
/// out of an existing [`ImplicationEngine`], extending its `V` with
/// `extra_attributes` first.
pub fn atom_order_closure_with(
    engine: &mut ImplicationEngine,
    arena: &mut TermArena,
    extra_attributes: &[Attribute],
) -> HashSet<(Attribute, Attribute)> {
    let extra_terms: Vec<_> = extra_attributes.iter().map(|&a| arena.atom(a)).collect();
    engine.add_goal_terms(arena, &extra_terms);
    atom_pairs(arena, engine.atom_consequences(arena))
}

fn atom_pairs(
    arena: &TermArena,
    consequences: Vec<(TermId, TermId)>,
) -> HashSet<(Attribute, Attribute)> {
    consequences
        .into_iter()
        .map(|(p, q)| {
            let lhs = match arena.node(p) {
                TermNode::Atom(a) => a,
                _ => unreachable!("atom_consequences returns atoms"),
            };
            let rhs = match arena.node(q) {
                TermNode::Atom(a) => a,
                _ => unreachable!("atom_consequences returns atoms"),
            };
            (lhs, rhs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_base::{AttrSet, Universe};
    use ps_lattice::parse_equation;

    #[test]
    fn implication_of_fpds_matches_fd_intuition() {
        let mut universe = Universe::new();
        let mut arena = TermArena::new();
        let e = vec![
            parse_equation("A = A*B", &mut universe, &mut arena).unwrap(),
            parse_equation("B = B*C", &mut universe, &mut arena).unwrap(),
        ];
        let a = universe.lookup("A").unwrap();
        let c = universe.lookup("C").unwrap();
        let goal = Fpd::new(AttrSet::singleton(a), AttrSet::singleton(c));
        assert!(pd_implies_fpd(&mut arena, &e, &goal, Algorithm::Worklist));
        let converse = Fpd::new(AttrSet::singleton(c), AttrSet::singleton(a));
        assert!(!pd_implies_fpd(
            &mut arena,
            &e,
            &converse,
            Algorithm::Worklist
        ));
    }

    #[test]
    fn sum_dependencies_entail_their_component_inequalities() {
        let mut universe = Universe::new();
        let mut arena = TermArena::new();
        let e = vec![parse_equation("C = A + B", &mut universe, &mut arena).unwrap()];
        let goal = parse_equation("A + C = C", &mut universe, &mut arena).unwrap();
        assert!(pd_implies(&arena, &e, goal, Algorithm::Worklist));
        assert!(pd_implies(&arena, &e, goal, Algorithm::NaiveFixpoint));
    }

    #[test]
    fn identities_are_recognized_without_constraints() {
        let mut universe = Universe::new();
        let mut arena = TermArena::new();
        let absorption = parse_equation("A*(A+B) = A", &mut universe, &mut arena).unwrap();
        let distributivity =
            parse_equation("A*(B+C) = (A*B)+(A*C)", &mut universe, &mut arena).unwrap();
        assert!(is_identity(&arena, absorption));
        assert!(!is_identity(&arena, distributivity));
        // Identity recognition agrees with ALG on the empty constraint set.
        assert!(pd_implies(&arena, &[], absorption, Algorithm::Worklist));
        assert!(!pd_implies(
            &arena,
            &[],
            distributivity,
            Algorithm::Worklist
        ));
    }

    #[test]
    fn cached_engine_variants_agree_with_the_rebuilding_entry_points() {
        let mut universe = Universe::new();
        let mut arena = TermArena::new();
        let e = vec![
            parse_equation("A = A*B", &mut universe, &mut arena).unwrap(),
            parse_equation("B = B*C", &mut universe, &mut arena).unwrap(),
        ];
        let goals = vec![
            parse_equation("A = A*C", &mut universe, &mut arena).unwrap(),
            parse_equation("C = C*A", &mut universe, &mut arena).unwrap(),
            parse_equation("A*(A+B) = A", &mut universe, &mut arena).unwrap(),
        ];
        let mut engine = ImplicationEngine::new(&arena, &e);
        for &goal in &goals {
            assert_eq!(
                pd_implies_with(&mut engine, &arena, goal),
                pd_implies(&arena, &e, goal, Algorithm::NaiveFixpoint),
            );
        }
        let a = universe.lookup("A").unwrap();
        let c = universe.lookup("C").unwrap();
        let fpd = Fpd::new(AttrSet::singleton(a), AttrSet::singleton(c));
        assert_eq!(
            pd_implies_fpd_with(&mut engine, &mut arena, &fpd),
            pd_implies_fpd(&mut arena, &e, &fpd, Algorithm::Worklist),
        );
        let closure_cached = atom_order_closure_with(&mut engine, &mut arena, &[a, c]);
        let closure_rebuilt = atom_order_closure(&mut arena, &e, &[a, c], Algorithm::Worklist);
        assert_eq!(closure_cached, closure_rebuilt);
    }

    #[test]
    fn atom_order_closure_collects_attribute_consequences() {
        let mut universe = Universe::new();
        let mut arena = TermArena::new();
        let e = vec![
            parse_equation("A = A*B", &mut universe, &mut arena).unwrap(),
            parse_equation("C = A + B", &mut universe, &mut arena).unwrap(),
        ];
        let a = universe.lookup("A").unwrap();
        let b = universe.lookup("B").unwrap();
        let c = universe.lookup("C").unwrap();
        let d = universe.attr("D");
        let closure = atom_order_closure(&mut arena, &e, &[a, b, c, d], Algorithm::Worklist);
        assert!(closure.contains(&(a, b)));
        assert!(closure.contains(&(a, c)));
        assert!(closure.contains(&(b, c)));
        assert!(!closure.contains(&(c, a)));
        assert!(!closure.iter().any(|&(x, y)| x == d || y == d));
    }
}
