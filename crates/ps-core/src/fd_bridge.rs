//! Bridging functional dependencies and partition dependencies.
//!
//! Theorem 3 of the paper connects the two worlds:
//!
//! * if an interpretation satisfies `X = X·Y` then its canonical relation
//!   `R(I)` satisfies the FD `X → Y`;
//! * a relation `r` satisfies `X → Y` iff its canonical interpretation
//!   `I(r)` satisfies `X = X·Y`.
//!
//! Consequently (Section 5.3) FD implication embeds into PD implication, and
//! the embedding is exercised by [`fd_implies_via_lattice`] and benchmarked
//! as experiment E2.

use ps_lattice::{word_problem, Algorithm, ImplicationEngine, TermArena};
use ps_relation::Fd;

use crate::dependency::{equations_of_fpds, fpds_of_fds, Fpd};

/// Decides FD implication by translating the FDs into FPD equations and
/// running the lattice word-problem algorithm (Theorem 8 + Section 5.3).
///
/// Semantically equivalent to [`ps_relation::fd_closure::implies`]; the
/// equivalence is asserted by property tests and measured by experiment E2.
/// Rebuilds the derived order per goal — for a batch of goals over one FD
/// set, use [`fd_implies_many_via_lattice`].
pub fn fd_implies_via_lattice(fds: &[Fd], goal: &Fd, algorithm: Algorithm) -> bool {
    let mut arena = TermArena::new();
    let equations = equations_of_fpds(&fpds_of_fds(fds), &mut arena);
    let goal_equation = Fpd::from_fd(goal).as_meet_equation(&mut arena);
    word_problem::entails(&arena, &equations, goal_equation, algorithm)
}

/// Batched FD implication through the lattice route: the FD set is
/// translated once, one [`ImplicationEngine`] is built and saturated once,
/// and every goal is answered from the cached closure (growing `V` only by
/// each goal's own meet equation).
pub fn fd_implies_many_via_lattice(fds: &[Fd], goals: &[Fd]) -> Vec<bool> {
    let mut arena = TermArena::new();
    let equations = equations_of_fpds(&fpds_of_fds(fds), &mut arena);
    let goal_equations: Vec<_> = goals
        .iter()
        .map(|goal| Fpd::from_fd(goal).as_meet_equation(&mut arena))
        .collect();
    let mut engine = ImplicationEngine::new(&arena, &equations);
    engine.entails_many(&arena, &goal_equations)
}

/// Decides FD implication by translating into the idempotent-commutative-
/// semigroup word problem (the other identification made in Section 5.3).
pub fn fd_implies_via_semigroup(fds: &[Fd], goal: &Fd) -> bool {
    let equations: Vec<ps_lattice::semigroup::WordEquation> = fds
        .iter()
        .map(|fd| ps_lattice::semigroup::WordEquation::from_fd(fd.lhs.clone(), fd.rhs.clone()))
        .collect();
    let goal_eq = ps_lattice::semigroup::WordEquation::from_fd(goal.lhs.clone(), goal.rhs.clone());
    ps_lattice::semigroup::entails(&equations, &goal_eq)
}

/// The reverse reduction of Section 5.3: the uniform word problem for
/// idempotent commutative semigroups reduces to FD implication, because the
/// word equation `X = Y` is equivalent to the pair of equations `X = X·Y` and
/// `Y = Y·X` (Example f), i.e. to the FDs `X → Y` and `Y → X`.
///
/// Cross-validated against [`ps_lattice::semigroup::entails`] in tests.
pub fn semigroup_entails_via_fds(
    equations: &[ps_lattice::semigroup::WordEquation],
    goal: &ps_lattice::semigroup::WordEquation,
) -> bool {
    let fds: Vec<Fd> = equations
        .iter()
        .flat_map(|eq| {
            [
                Fd::new(eq.lhs.clone(), eq.rhs.clone()),
                Fd::new(eq.rhs.clone(), eq.lhs.clone()),
            ]
        })
        .collect();
    let forward = Fd::new(goal.lhs.clone(), goal.rhs.clone());
    let backward = Fd::new(goal.rhs.clone(), goal.lhs.clone());
    ps_relation::fd_closure::implies(&fds, &forward)
        && ps_relation::fd_closure::implies(&fds, &backward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_base::Universe;
    use ps_relation::{fd, fd_closure};

    fn attrs(n: usize) -> Vec<ps_base::Attribute> {
        let mut u = Universe::new();
        let names: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
        u.attrs(names.iter().map(String::as_str))
    }

    #[test]
    fn lattice_route_agrees_with_closure_on_chains() {
        let a = attrs(4);
        let fds = vec![fd(&[a[0]], &[a[1]]), fd(&[a[1]], &[a[2]])];
        let cases = vec![
            fd(&[a[0]], &[a[2]]),
            fd(&[a[0]], &[a[1], a[2]]),
            fd(&[a[2]], &[a[0]]),
            fd(&[a[0], a[3]], &[a[2]]),
            fd(&[a[3]], &[a[0]]),
        ];
        for goal in &cases {
            let by_closure = fd_closure::implies(&fds, goal);
            for algo in [Algorithm::NaiveFixpoint, Algorithm::Worklist] {
                assert_eq!(
                    by_closure,
                    fd_implies_via_lattice(&fds, goal, algo),
                    "{goal}"
                );
            }
            assert_eq!(by_closure, fd_implies_via_semigroup(&fds, goal), "{goal}");
        }
        // The batched engine route answers the whole case list at once.
        let expected: Vec<bool> = cases
            .iter()
            .map(|goal| fd_closure::implies(&fds, goal))
            .collect();
        assert_eq!(fd_implies_many_via_lattice(&fds, &cases), expected);
    }

    #[test]
    fn augmentation_and_pseudotransitivity() {
        // Armstrong's axioms are reproduced by the lattice route.
        let a = attrs(5);
        let fds = vec![fd(&[a[0]], &[a[1]]), fd(&[a[1], a[2]], &[a[3]])];
        // Pseudo-transitivity: A→B, BC→D implies AC→D.
        let goal = fd(&[a[0], a[2]], &[a[3]]);
        assert!(fd_implies_via_lattice(&fds, &goal, Algorithm::Worklist));
        assert!(fd_implies_via_semigroup(&fds, &goal));
        assert!(fd_closure::implies(&fds, &goal));
        // But AC→E does not follow.
        let bad = fd(&[a[0], a[2]], &[a[4]]);
        assert!(!fd_implies_via_lattice(&fds, &bad, Algorithm::Worklist));
        assert!(!fd_implies_via_semigroup(&fds, &bad));
    }

    #[test]
    fn reflexivity_is_reproduced() {
        let a = attrs(2);
        let goal = fd(&[a[0], a[1]], &[a[0]]);
        assert!(fd_implies_via_lattice(&[], &goal, Algorithm::Worklist));
        assert!(fd_implies_via_semigroup(&[], &goal));
    }

    #[test]
    fn reverse_reduction_agrees_with_the_direct_semigroup_solver() {
        use ps_lattice::semigroup::{entails, WordEquation};
        let a = attrs(4);
        let set = |xs: &[ps_base::Attribute]| xs.iter().copied().collect::<ps_base::AttrSet>();
        let cases: Vec<(Vec<WordEquation>, WordEquation)> = vec![
            // AB = C, C = D  ⊢  AB = D
            (
                vec![
                    WordEquation::new(set(&[a[0], a[1]]), set(&[a[2]])),
                    WordEquation::new(set(&[a[2]]), set(&[a[3]])),
                ],
                WordEquation::new(set(&[a[0], a[1]]), set(&[a[3]])),
            ),
            // A = AB  ⊬  B = AB
            (
                vec![WordEquation::new(set(&[a[0]]), set(&[a[0], a[1]]))],
                WordEquation::new(set(&[a[1]]), set(&[a[0], a[1]])),
            ),
            // Idempotence-style goal with no premises.
            (vec![], WordEquation::new(set(&[a[0], a[0]]), set(&[a[0]]))),
            // Symmetric merge: AB = CD ⊢ ABC = ABD.
            (
                vec![WordEquation::new(set(&[a[0], a[1]]), set(&[a[2], a[3]]))],
                WordEquation::new(set(&[a[0], a[1], a[2]]), set(&[a[0], a[1], a[3]])),
            ),
        ];
        for (equations, goal) in cases {
            assert_eq!(
                entails(&equations, &goal),
                semigroup_entails_via_fds(&equations, &goal),
            );
        }
    }
}
