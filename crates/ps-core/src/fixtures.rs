//! Ready-made reproductions of the paper's worked examples (Figures 1 and 2
//! and the examples of Section 3.2), shared by the integration tests, the
//! examples and the benchmark suite.

use ps_base::{SymbolTable, Universe};
use ps_lattice::{parse_equation, Equation, TermArena};
use ps_relation::{Database, DatabaseBuilder, Relation};

use crate::PartitionInterpretation;

/// Everything needed to work with the Figure 1 example: the universe and
/// symbol table, the database `d`, the dependency set `E`, and the partition
/// interpretation that satisfies `d`, `E`, CAD and EAP.
#[derive(Debug)]
pub struct Figure1 {
    /// Attribute universe containing `A`, `B`, `C`.
    pub universe: Universe,
    /// Symbol table containing the data constants.
    pub symbols: SymbolTable,
    /// Term arena holding the dependency expressions.
    pub arena: TermArena,
    /// The database `d` of Figure 1 (a single relation over `ABC`).
    pub database: Database,
    /// The dependency set `E = {A = A·B, B + C = A + C}`.
    pub dependencies: Vec<Equation>,
    /// The satisfying interpretation shown in the figure.
    pub interpretation: PartitionInterpretation,
}

/// Builds the Figure 1 example.
pub fn figure1() -> Figure1 {
    let mut universe = Universe::new();
    let mut symbols = SymbolTable::new();
    let mut arena = TermArena::new();
    let (a, b, c) = (universe.attr("A"), universe.attr("B"), universe.attr("C"));

    let database = DatabaseBuilder::new()
        .relation(
            &mut universe,
            &mut symbols,
            "R",
            &["A", "B", "C"],
            &[
                &["a", "b", "c"],
                &["a2", "b1", "c"],
                &["a2", "b1", "c1"],
                &["a1", "b", "c1"],
            ],
        )
        .expect("well-formed Figure 1 relation")
        .build();

    let dependencies = vec![
        parse_equation("A = A*B", &mut universe, &mut arena).expect("valid PD"),
        parse_equation("B + C = A + C", &mut universe, &mut arena).expect("valid PD"),
    ];

    let mut interpretation = PartitionInterpretation::new();
    interpretation
        .set_named_blocks(
            a,
            vec![
                (symbols.symbol("a"), vec![1]),
                (symbols.symbol("a1"), vec![4]),
                (symbols.symbol("a2"), vec![2, 3]),
            ],
        )
        .expect("Figure 1 interpretation of A");
    interpretation
        .set_named_blocks(
            b,
            vec![
                (symbols.symbol("b"), vec![1, 4]),
                (symbols.symbol("b1"), vec![2, 3]),
            ],
        )
        .expect("Figure 1 interpretation of B");
    interpretation
        .set_named_blocks(
            c,
            vec![
                (symbols.symbol("c"), vec![1, 2]),
                (symbols.symbol("c1"), vec![3, 4]),
            ],
        )
        .expect("Figure 1 interpretation of C");

    Figure1 {
        universe,
        symbols,
        arena,
        database,
        dependencies,
        interpretation,
    }
}

/// The two relations of Figure 2 (used in the proof of Theorem 5): `r1`
/// satisfies the MVD `A ↠ B`, `r2` violates it, yet their canonical
/// interpretations generate isomorphic lattices.
#[derive(Debug)]
pub struct Figure2 {
    /// Attribute universe containing `A`, `B`, `C`.
    pub universe: Universe,
    /// Symbol table containing the data constants.
    pub symbols: SymbolTable,
    /// The relation satisfying the MVD.
    pub r1: Relation,
    /// The relation violating the MVD.
    pub r2: Relation,
}

/// Builds the Figure 2 example.
pub fn figure2() -> Figure2 {
    let mut universe = Universe::new();
    let mut symbols = SymbolTable::new();
    let db = DatabaseBuilder::new()
        .relation(
            &mut universe,
            &mut symbols,
            "r1",
            &["A", "B", "C"],
            &[
                &["a", "b1", "c1"],
                &["a", "b1", "c2"],
                &["a", "b2", "c1"],
                &["a", "b2", "c2"],
            ],
        )
        .expect("well-formed r1")
        .relation(
            &mut universe,
            &mut symbols,
            "r2",
            &["A", "B", "C"],
            &[&["a", "b1", "c1"], &["a", "b2", "c2"], &["a", "b1", "c2"]],
        )
        .expect("well-formed r2")
        .build();
    let r1 = db.relation_named("r1").expect("r1 exists").clone();
    let r2 = db.relation_named("r2").expect("r2 exists").clone();
    Figure2 {
        universe,
        symbols,
        r1,
        r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_fixture_is_consistent_with_the_paper() {
        let fig = figure1();
        assert_eq!(fig.database.total_tuples(), 4);
        assert_eq!(fig.dependencies.len(), 2);
        assert!(fig
            .interpretation
            .satisfies_database(&fig.database)
            .unwrap());
        assert!(fig
            .interpretation
            .satisfies_all_pds(&fig.arena, &fig.dependencies)
            .unwrap());
        assert!(fig.interpretation.satisfies_cad(&fig.database).unwrap());
        assert!(fig.interpretation.satisfies_eap());
    }

    #[test]
    fn figure2_fixture_matches_mvd_behaviour() {
        let fig = figure2();
        let a = fig.universe.lookup("A").unwrap();
        let b = fig.universe.lookup("B").unwrap();
        let mvd = ps_relation::Mvd::new(
            ps_base::AttrSet::singleton(a),
            ps_base::AttrSet::singleton(b),
        );
        assert!(fig.r1.satisfies_mvd(&mvd));
        assert!(!fig.r2.satisfies_mvd(&mvd));
        assert_eq!(fig.r1.len(), 4);
        assert_eq!(fig.r2.len(), 3);
    }
}
