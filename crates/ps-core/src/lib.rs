//! # ps-core
//!
//! *Partition semantics for relations* — the primary contribution of
//! Cosmadakis, Kanellakis and Spyratos (PODS 1985 / JCSS 33, 1986),
//! implemented on top of the workspace substrates:
//!
//! * [`PartitionInterpretation`] — Definition 1: a population `p_A`, an
//!   atomic partition `π_A` and a naming function `f_A` per attribute;
//!   evaluation of partition expressions, satisfaction of databases
//!   (Definition 2), of partition dependencies (Definition 3), and of the
//!   CAD / EAP assumptions (Definition 4).
//! * [`Fpd`] and partition dependencies — Section 3.2: a PD is an equation
//!   between partition expressions ([`Pd`] = [`ps_lattice::Equation`]); an
//!   FPD `X = X·Y` is the partition-semantic counterpart of the FD `X → Y`.
//! * [`canonical`] — Definitions 5–7: the canonical interpretation `I(r)` of
//!   a relation, the canonical relation `R(I)` of an interpretation, and
//!   PD satisfaction *by a relation* (`r ⊨ δ  ⇔  I(r) ⊨ δ`), with
//!   Theorem 3 connecting FPDs and FDs.
//! * [`lattice_of`] — Theorem 1: the lattice `L(I)` obtained by closing the
//!   atomic partitions under product and sum, materialized as a
//!   [`ps_lattice::FiniteLattice`].
//! * [`implication`] — Theorems 8 and 9: PD implication is the uniform word
//!   problem for lattices; FD implication is the word problem for idempotent
//!   commutative semigroups; identity recognition (Theorem 10).
//! * [`weak_bridge`] — Theorems 6 and 7: satisfiability of a database plus
//!   dependencies by a partition interpretation is equivalent to the
//!   existence of a weak instance satisfying them.
//! * [`consistency`] — Section 6.2 / Theorem 12: the polynomial-time
//!   consistency test for a database and an arbitrary set of PDs.
//! * [`cad`] — Section 6.1 / Theorem 11: consistency under CAD + EAP, the
//!   NAE-3SAT reduction of Figure 3 and the exact solver.
//! * [`connectivity`] — Example e and Theorem 4: partition dependencies
//!   express undirected connectivity; includes the growing-chain
//!   construction used in the inexpressibility proof.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cad;
pub mod canonical;
pub mod connectivity;
pub mod consistency;
pub mod dependency;
mod error;
pub mod fd_bridge;
pub mod fixtures;
pub mod implication;
mod interpretation;
pub mod lattice_of;
pub mod weak_bridge;

pub use dependency::{equations_of_fpds, fds_of_fpds, fpds_of_fds, Fpd, Pd};
pub use error::CoreError;
pub use interpretation::{AttributeInterpretation, PartitionInterpretation};

/// Convenient `Result` alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
