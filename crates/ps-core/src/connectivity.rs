//! Partition dependencies and undirected connectivity (Example e of
//! Section 3.2, characterization (II) of Section 4.1, and Theorem 4 of
//! Section 4.2).
//!
//! Example e encodes an undirected graph as a relation over head `A`, tail
//! `B` and component `C` (the `ps-graph` crate builds those relations); the
//! partition dependency `C = A + B` then holds **iff** the `C` column names
//! exactly the connected components.  Theorem 4 shows that this cannot be
//! expressed by any set of first-order sentences: its proof uses the growing
//! "path" relations `r_i`, reproduced here by [`theorem4_path_relation`],
//! whose extreme tuples are chain-connected only by chains of length `Θ(i)`
//! ([`tuple_chain_distance`]), defeating every bounded-length test
//! ([`chain_connected_within`]).

use std::collections::{HashMap, VecDeque};

use ps_base::{Attribute, SymbolTable, Universe};
use ps_graph::{components_union_find, GraphEncoding, UndirectedGraph};
use ps_lattice::{Equation, TermArena};
use ps_partition::UnionFind;
use ps_relation::{Relation, RelationScheme};

use crate::canonical::{canonical_interpretation, relation_satisfies_pd};
use crate::Result;

/// Builds the Example e partition dependency `C = A + B` for a graph
/// encoding.
pub fn connectivity_pd(arena: &mut TermArena, encoding: &GraphEncoding) -> Equation {
    connectivity_pd_for(
        arena,
        encoding.attr_component,
        encoding.attr_head,
        encoding.attr_tail,
    )
}

/// Builds the partition dependency `component = head + tail` for arbitrary
/// attributes.
pub fn connectivity_pd_for(
    arena: &mut TermArena,
    component: Attribute,
    head: Attribute,
    tail: Attribute,
) -> Equation {
    let c = arena.atom(component);
    let a = arena.atom(head);
    let b = arena.atom(tail);
    let ab = arena.join(a, b);
    Equation::new(c, ab)
}

/// Whether the relation's `C` column names exactly the connected components,
/// decided through partition semantics: `r ⊨ C = A + B` via the canonical
/// interpretation `I(r)` (Definition 7).
pub fn relation_encodes_components(
    relation: &Relation,
    arena: &mut TermArena,
    encoding: &GraphEncoding,
) -> Result<bool> {
    let pd = connectivity_pd(arena, encoding);
    relation_satisfies_pd(relation, arena, pd)
}

/// Whether a vertex labelling is the connected-component labelling of
/// `graph`, decided with the union–find baseline (the comparison point of
/// experiment E4).  Two labellings are considered the same when they induce
/// the same partition of the vertices.
pub fn labelling_is_components(graph: &UndirectedGraph, labelling: &[usize]) -> bool {
    assert_eq!(
        labelling.len(),
        graph.num_vertices(),
        "labelling must cover every vertex"
    );
    let components = components_union_find(graph);
    // Same partition ⇔ the two labellings refine each other.
    let mut label_to_comp: HashMap<usize, usize> = HashMap::new();
    let mut comp_to_label: HashMap<usize, usize> = HashMap::new();
    for v in graph.vertices() {
        if *label_to_comp.entry(labelling[v]).or_insert(components[v]) != components[v] {
            return false;
        }
        if *comp_to_label.entry(components[v]).or_insert(labelling[v]) != labelling[v] {
            return false;
        }
    }
    true
}

/// Computes the connected components of a graph *through partition
/// semantics*: evaluate the expression `A + B` in the canonical
/// interpretation of the Example e relation and read the component of each
/// vertex off the block containing its reflexive tuple `v v c`.
///
/// Returns one component id per vertex (ids are arbitrary but consistent).
/// Cross-checked against [`ps_graph::components_union_find`] in tests; used
/// as the "PD semantics" side of the experiment E4 benchmark.
pub fn components_via_partition_semantics(
    relation: &Relation,
    arena: &mut TermArena,
    encoding: &GraphEncoding,
) -> Result<Vec<usize>> {
    let interpretation = canonical_interpretation(relation)?;
    if interpretation.is_empty() {
        // No tuples: every vertex is alone (if there are vertices at all,
        // they do not occur in the relation, so report one block each).
        return Ok((0..encoding.vertex_symbols.len()).collect());
    }
    let a = arena.atom(encoding.attr_head);
    let b = arena.atom(encoding.attr_tail);
    let sum = arena.join(a, b);
    let partition = interpretation.eval(arena, sum)?;

    // Locate, for every vertex, the reflexive tuple `v v c`.
    let mut reflexive: HashMap<ps_base::Symbol, usize> = HashMap::new();
    for (idx, tuple) in relation.iter().enumerate() {
        let head = tuple.get(encoding.attr_head)?;
        let tail = tuple.get(encoding.attr_tail)?;
        if head == tail {
            reflexive.entry(head).or_insert(idx);
        }
    }

    let mut next_isolated = partition.num_blocks();
    let components = encoding
        .vertex_symbols
        .iter()
        .map(|symbol| match reflexive.get(symbol) {
            Some(&tuple_idx) => partition
                .block_index_of(ps_partition::Element::new(tuple_idx as u32))
                .expect("tuple indices populate the canonical interpretation"),
            None => {
                // Isolated vertex (no incident edge): it forms its own
                // component, with an id outside the partition's block range.
                next_isolated += 1;
                next_isolated - 1
            }
        })
        .collect();
    Ok(components)
}

/// The number of connected components according to partition semantics
/// (the number of blocks of `A + B` in `I(r)`, plus isolated vertices).
pub fn num_components_via_partition_semantics(
    relation: &Relation,
    arena: &mut TermArena,
    encoding: &GraphEncoding,
) -> Result<usize> {
    let components = components_via_partition_semantics(relation, arena, encoding)?;
    let mut ids = components;
    ids.sort_unstable();
    ids.dedup();
    Ok(ids.len())
}

/// The Theorem 4 "path" relation `r_i` (for even `i ≥ 2`):
///
/// ```text
/// r_i = { 1.2.0,  3.2.0,  3.4.0,  5.4.0,  …,  (i-1).i.0,  (i+1).i.0,  (i+1).(i+2).0 }
/// ```
///
/// over attributes `A`, `B`, `C`.  Every tuple carries the same `C` value, and
/// consecutive tuples share an `A` or a `B` value, so the relation satisfies
/// `C = A + B`; but the first and last tuples are connected only by the full
/// chain, whose length grows with `i`.  This is the structure the compactness
/// argument of Theorem 4 uses to defeat any fixed set of first-order
/// sentences.
pub fn theorem4_path_relation(
    i: usize,
    universe: &mut Universe,
    symbols: &mut SymbolTable,
) -> Relation {
    assert!(i >= 2 && i.is_multiple_of(2), "Theorem 4 uses even i ≥ 2");
    let a = universe.attr("A");
    let b = universe.attr("B");
    let c = universe.attr("C");
    let attrs: ps_base::AttrSet = vec![a, b, c].into();
    let scheme = RelationScheme::new(format!("r{i}"), attrs);
    let mut relation = Relation::new(scheme.clone());
    let zero = symbols.symbol("0");
    let number = |n: usize, symbols: &mut SymbolTable| symbols.symbol(&n.to_string());

    let pos_a = scheme.position(a).expect("A in scheme");
    let pos_b = scheme.position(b).expect("B in scheme");
    let pos_c = scheme.position(c).expect("C in scheme");
    let push = |x: usize, y: usize, symbols: &mut SymbolTable, relation: &mut Relation| {
        let mut values = vec![zero; 3];
        values[pos_a] = number(x, symbols);
        values[pos_b] = number(y, symbols);
        values[pos_c] = zero;
        relation
            .insert_values(&values)
            .expect("arity matches the scheme");
    };

    // 1.2.0, then (2k+1).(2k).0 and (2k+1).(2k+2).0 for k = 1 .. i/2.
    push(1, 2, symbols, &mut relation);
    for k in 1..=(i / 2) {
        push(2 * k + 1, 2 * k, symbols, &mut relation);
        push(2 * k + 1, 2 * k + 2, symbols, &mut relation);
    }
    relation
}

/// Builds the tuple-adjacency structure used by the Theorem 4 chain
/// arguments: two tuples are adjacent iff they agree on `A` or on `B`
/// (the chains of characterization (II)).
fn tuple_adjacency(relation: &Relation, head: Attribute, tail: Attribute) -> Vec<Vec<usize>> {
    let n = relation.len();
    let mut by_a: HashMap<ps_base::Symbol, Vec<usize>> = HashMap::new();
    let mut by_b: HashMap<ps_base::Symbol, Vec<usize>> = HashMap::new();
    for (idx, tuple) in relation.iter().enumerate() {
        let a = tuple.get(head).expect("head attribute in scheme");
        let b = tuple.get(tail).expect("tail attribute in scheme");
        by_a.entry(a).or_default().push(idx);
        by_b.entry(b).or_default().push(idx);
    }
    let mut adjacency = vec![Vec::new(); n];
    for group in by_a.values().chain(by_b.values()) {
        for (i, &x) in group.iter().enumerate() {
            for &y in &group[i + 1..] {
                adjacency[x].push(y);
                adjacency[y].push(x);
            }
        }
    }
    adjacency
}

/// The length of a shortest tuple chain `t = t_0, …, t_n = h` in which
/// consecutive tuples agree on `A` or on `B` (characterization (II)), or
/// `None` if the two tuples are not chain-connected at all.
pub fn tuple_chain_distance(
    relation: &Relation,
    head: Attribute,
    tail: Attribute,
    from: usize,
    to: usize,
) -> Option<usize> {
    assert!(
        from < relation.len() && to < relation.len(),
        "tuple index out of range"
    );
    if from == to {
        return Some(0);
    }
    let adjacency = tuple_adjacency(relation, head, tail);
    let mut distance = vec![usize::MAX; relation.len()];
    distance[from] = 0;
    let mut queue = VecDeque::from([from]);
    while let Some(v) = queue.pop_front() {
        for &w in &adjacency[v] {
            if distance[w] == usize::MAX {
                distance[w] = distance[v] + 1;
                if w == to {
                    return Some(distance[w]);
                }
                queue.push_back(w);
            }
        }
    }
    None
}

/// Whether tuples `from` and `to` are chain-connected by a chain of length at
/// most `k` — the bounded-connectivity property the first-order formulas
/// `φ_k` of the Theorem 4 proof can express.  Theorem 4's point is that no
/// finite bound `k` suffices: [`theorem4_path_relation`] provides, for every
/// `k`, a relation satisfying `C = A + B` whose equal-`C` tuples need chains
/// longer than `k`.
pub fn chain_connected_within(
    relation: &Relation,
    head: Attribute,
    tail: Attribute,
    from: usize,
    to: usize,
    k: usize,
) -> bool {
    matches!(tuple_chain_distance(relation, head, tail, from, to), Some(d) if d <= k)
}

/// Checks characterization (II) of Section 4.1 directly on a relation —
/// equal `C` values iff chain-connected on `A`/`B` — without building the
/// canonical interpretation.  Used to cross-validate
/// [`relation_encodes_components`] and as a faster baseline in the
/// experiment E4 benchmark.
pub fn satisfies_sum_pd_directly(
    relation: &Relation,
    component: Attribute,
    head: Attribute,
    tail: Attribute,
) -> bool {
    let n = relation.len();
    if n == 0 {
        return true;
    }
    // Chain-connectivity classes via union–find over tuples.
    let mut uf = UnionFind::new(n);
    let mut by_a: HashMap<ps_base::Symbol, usize> = HashMap::new();
    let mut by_b: HashMap<ps_base::Symbol, usize> = HashMap::new();
    for (idx, tuple) in relation.iter().enumerate() {
        let a = tuple.get(head).expect("head attribute in scheme");
        let b = tuple.get(tail).expect("tail attribute in scheme");
        match by_a.get(&a) {
            Some(&leader) => {
                uf.union(leader, idx);
            }
            None => {
                by_a.insert(a, idx);
            }
        }
        match by_b.get(&b) {
            Some(&leader) => {
                uf.union(leader, idx);
            }
            None => {
                by_b.insert(b, idx);
            }
        }
    }
    // Equal C ⇔ same chain class.
    let c_values: Vec<ps_base::Symbol> = relation
        .iter()
        .map(|t| t.get(component).expect("component attribute in scheme"))
        .collect();
    let mut class_of_c: HashMap<ps_base::Symbol, usize> = HashMap::new();
    let mut c_of_class: HashMap<usize, ps_base::Symbol> = HashMap::new();
    for (idx, &c) in c_values.iter().enumerate() {
        let class = uf.find(idx);
        if *class_of_c.entry(c).or_insert(class) != class {
            return false;
        }
        if *c_of_class.entry(class).or_insert(c) != c {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_graph::{component_relation, edge_relation, gnp, path};

    fn setup() -> (Universe, SymbolTable, TermArena) {
        (Universe::new(), SymbolTable::new(), TermArena::new())
    }

    #[test]
    fn component_relation_satisfies_the_connectivity_pd() {
        let (mut universe, mut symbols, mut arena) = setup();
        let mut graph = UndirectedGraph::new(6);
        graph.add_edge(0, 1);
        graph.add_edge(1, 2);
        graph.add_edge(3, 4);
        let (relation, encoding) = component_relation(&graph, &mut universe, &mut symbols, "G");
        assert!(relation_encodes_components(&relation, &mut arena, &encoding).unwrap());
        assert!(satisfies_sum_pd_directly(
            &relation,
            encoding.attr_component,
            encoding.attr_head,
            encoding.attr_tail
        ));
    }

    #[test]
    fn wrong_labelling_violates_the_connectivity_pd() {
        let (mut universe, mut symbols, mut arena) = setup();
        let graph = path(4); // one component

        // Pretend vertices 2, 3 are a separate component.
        let labelling = vec![0, 0, 1, 1];
        let (relation, encoding) =
            edge_relation(&graph, &labelling, &mut universe, &mut symbols, "G");
        assert!(!relation_encodes_components(&relation, &mut arena, &encoding).unwrap());
        assert!(!satisfies_sum_pd_directly(
            &relation,
            encoding.attr_component,
            encoding.attr_head,
            encoding.attr_tail
        ));
        assert!(!labelling_is_components(&graph, &labelling));
        assert!(labelling_is_components(&graph, &[7, 7, 7, 7]));
    }

    #[test]
    fn partition_semantics_components_agree_with_union_find() {
        let (mut universe, mut symbols, mut arena) = setup();
        for seed in 0..5 {
            let graph = gnp(24, 0.08, seed);
            let (relation, encoding) = component_relation(&graph, &mut universe, &mut symbols, "G");
            let via_pd =
                components_via_partition_semantics(&relation, &mut arena, &encoding).unwrap();
            let via_uf = components_union_find(&graph);
            // Same partition of the vertex set (ids may differ).
            assert!(labelling_is_components(&graph, &via_pd), "seed {seed}");
            assert_eq!(via_pd.len(), via_uf.len());
            assert_eq!(
                num_components_via_partition_semantics(&relation, &mut arena, &encoding).unwrap(),
                ps_graph::num_components(&graph),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn isolated_vertices_get_their_own_components() {
        let (mut universe, mut symbols, mut arena) = setup();
        let mut graph = UndirectedGraph::new(5);
        graph.add_edge(0, 1);
        // Vertices 2, 3, 4 have no incident edge and never occur in the relation.
        let (relation, encoding) = component_relation(&graph, &mut universe, &mut symbols, "G");
        let components =
            components_via_partition_semantics(&relation, &mut arena, &encoding).unwrap();
        assert_eq!(components.len(), 5);
        assert_eq!(components[0], components[1]);
        assert_ne!(components[2], components[3]);
        assert_ne!(components[2], components[0]);
        assert_eq!(
            num_components_via_partition_semantics(&relation, &mut arena, &encoding).unwrap(),
            4
        );
    }

    #[test]
    fn theorem4_path_relations_satisfy_the_pd_but_need_long_chains() {
        let (mut universe, mut symbols, mut arena) = setup();
        for i in [2usize, 4, 8, 12] {
            let relation = theorem4_path_relation(i, &mut universe, &mut symbols);
            assert_eq!(relation.len(), i + 1);
            let a = universe.lookup("A").unwrap();
            let b = universe.lookup("B").unwrap();
            let c = universe.lookup("C").unwrap();
            let pd = connectivity_pd_for(&mut arena, c, a, b);
            assert!(
                relation_satisfies_pd(&relation, &arena, pd).unwrap(),
                "i = {i}"
            );
            // The first and last tuples are connected, but only by the full chain.
            let last = relation.len() - 1;
            let distance = tuple_chain_distance(&relation, a, b, 0, last).unwrap();
            assert_eq!(distance, i, "i = {i}");
            assert!(chain_connected_within(&relation, a, b, 0, last, i));
            assert!(!chain_connected_within(&relation, a, b, 0, last, i - 1));
        }
    }

    #[test]
    fn chain_distance_handles_disconnected_and_trivial_cases() {
        let (mut universe, mut symbols, _arena) = setup();
        let mut graph = UndirectedGraph::new(4);
        graph.add_edge(0, 1);
        graph.add_edge(2, 3);
        let (relation, encoding) = component_relation(&graph, &mut universe, &mut symbols, "G");
        // A reflexive tuple of vertex 0 and one of vertex 2 are not connected.
        let idx_of = |v: usize| {
            relation
                .iter()
                .position(|t| {
                    t.get(encoding.attr_head).unwrap() == encoding.vertex_symbols[v]
                        && t.get(encoding.attr_tail).unwrap() == encoding.vertex_symbols[v]
                })
                .unwrap()
        };
        let (t0, t2) = (idx_of(0), idx_of(2));
        assert_eq!(
            tuple_chain_distance(&relation, encoding.attr_head, encoding.attr_tail, t0, t0),
            Some(0)
        );
        assert_eq!(
            tuple_chain_distance(&relation, encoding.attr_head, encoding.attr_tail, t0, t2),
            None
        );
        assert!(!chain_connected_within(
            &relation,
            encoding.attr_head,
            encoding.attr_tail,
            t0,
            t2,
            100
        ));
    }

    #[test]
    #[should_panic(expected = "even i")]
    fn theorem4_rejects_odd_parameters() {
        let mut universe = Universe::new();
        let mut symbols = SymbolTable::new();
        let _ = theorem4_path_relation(3, &mut universe, &mut symbols);
    }
}
