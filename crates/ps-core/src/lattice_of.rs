//! The lattice `L(I)` of an interpretation (Theorem 1).
//!
//! Closing the atomic partitions of an interpretation under product and sum
//! yields a lattice with constants over the attribute universe, and a PD
//! holds in the interpretation iff it holds in that lattice.  This module
//! materializes `L(I)` as an explicit [`FiniteLattice`] (with the map from
//! attributes to lattice elements), which is how the Figure 1
//! (non-distributivity) and Figure 2 / Theorem 5 (isomorphic lattices)
//! reproductions inspect interpretations.
//!
//! `L(I)` is grown *incrementally*: [`ps_partition::close_under_ops`] keeps a
//! frontier of partitions discovered in the previous saturation round and
//! combines only frontier × known pairs, deduplicating candidates by the
//! hash of their flat label vectors.  The number of product/sum evaluations
//! this needed is reported in [`InterpretationLattice::stats`], which the
//! `ps-bench` lattice-closure fixture compares against the full-recombination
//! strategy ([`ps_partition::close_under_ops_naive`]).

use std::collections::HashMap;

use ps_base::{Attribute, Universe};
use ps_lattice::{Equation, FiniteLattice, TermArena};
use ps_partition::{close_under_ops, ClosureStats, Partition};

use crate::{PartitionInterpretation, Result};

/// The materialized lattice `L(I)` of a partition interpretation.
#[derive(Debug, Clone)]
pub struct InterpretationLattice {
    /// The lattice itself (elements indexed as in `partitions`).
    pub lattice: FiniteLattice,
    /// The partition realizing each lattice element.
    pub partitions: Vec<Partition>,
    /// The lattice element named by each attribute (its atomic partition).
    pub constants: HashMap<Attribute, usize>,
    /// Closure statistics (how many product/sum evaluations were needed).
    pub stats: ClosureStats,
}

impl InterpretationLattice {
    /// Builds `L(I)` by closing the atomic partitions of `interpretation`
    /// under product and sum with the incremental frontier strategy.
    /// `max_size` caps the closure size (the lattices arising from the
    /// paper's interpretations are tiny).
    ///
    /// ```
    /// use ps_base::{SymbolTable, Universe};
    /// use ps_core::lattice_of::InterpretationLattice;
    /// use ps_core::PartitionInterpretation;
    ///
    /// // The Figure 1 interpretation: three atomic partitions of {1,2,3,4}.
    /// let mut universe = Universe::new();
    /// let mut symbols = SymbolTable::new();
    /// let mut interp = PartitionInterpretation::new();
    /// interp.set_named_blocks(universe.attr("A"), vec![
    ///     (symbols.symbol("a"), vec![1]),
    ///     (symbols.symbol("a1"), vec![4]),
    ///     (symbols.symbol("a2"), vec![2, 3]),
    /// ]).unwrap();
    /// interp.set_named_blocks(universe.attr("B"), vec![
    ///     (symbols.symbol("b"), vec![1, 4]),
    ///     (symbols.symbol("b1"), vec![2, 3]),
    /// ]).unwrap();
    /// interp.set_named_blocks(universe.attr("C"), vec![
    ///     (symbols.symbol("c"), vec![1, 2]),
    ///     (symbols.symbol("c1"), vec![3, 4]),
    /// ]).unwrap();
    ///
    /// let lattice = InterpretationLattice::build(&interp, 256).unwrap();
    /// assert!(lattice.len() >= 5);          // L(I) strictly extends the generators
    /// assert!(!lattice.is_distributive());  // Figure 1's lattice is not distributive
    /// assert_eq!(lattice.constants.len(), 3);
    /// ```
    pub fn build(interpretation: &PartitionInterpretation, max_size: usize) -> Result<Self> {
        let attributes: Vec<Attribute> = interpretation.attributes().collect();
        let generators: Vec<Partition> = attributes
            .iter()
            .map(|&a| {
                interpretation
                    .require(a)
                    .map(|interp| interp.atomic().clone())
            })
            .collect::<Result<Vec<_>>>()?;
        let (partitions, stats) = close_under_ops(&generators, max_size);
        let lattice =
            FiniteLattice::from_leq(partitions.len(), |i, j| partitions[i].leq(&partitions[j]))
                .map_err(crate::CoreError::Lattice)?;
        // Index the closure by label-vector hash so each constant lookup is
        // O(1) instead of a scan over canonical block structure.
        let index_of: HashMap<&Partition, usize> = partitions
            .iter()
            .enumerate()
            .map(|(idx, p)| (p, idx))
            .collect();
        let constants = attributes
            .iter()
            .map(|&a| {
                let atomic = interpretation.require(a).expect("checked above").atomic();
                let idx = *index_of.get(atomic).expect("generators are in the closure");
                (a, idx)
            })
            .collect();
        Ok(InterpretationLattice {
            lattice,
            partitions,
            constants,
            stats,
        })
    }

    /// Number of elements of `L(I)`.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Whether the lattice is empty (never the case for a non-empty
    /// interpretation).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Whether `L(I)` satisfies the PD under the constant assignment of the
    /// interpretation (Theorem 1 says this coincides with
    /// [`PartitionInterpretation::satisfies_pd`]).
    pub fn satisfies_pd(
        &self,
        arena: &TermArena,
        universe: &Universe,
        pd: Equation,
    ) -> Result<bool> {
        self.lattice
            .satisfies(arena, pd, &self.constants, universe)
            .map_err(crate::CoreError::Lattice)
    }

    /// Whether `L(I)` is distributive (Figure 1's lattice is not).
    pub fn is_distributive(&self) -> bool {
        self.lattice.is_distributive()
    }

    /// Whether `L(I)` is modular.
    pub fn is_modular(&self) -> bool {
        self.lattice.is_modular()
    }

    /// Whether this lattice is isomorphic to another interpretation's lattice
    /// (used by the Theorem 5 argument).
    pub fn is_isomorphic_to(&self, other: &InterpretationLattice) -> bool {
        self.lattice.is_isomorphic_to(&other.lattice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonical_interpretation;
    use crate::fixtures;
    use ps_lattice::parse_equation;

    #[test]
    fn figure1_lattice_is_not_distributive_but_satisfies_e() {
        let mut fig = fixtures::figure1();
        let lattice = InterpretationLattice::build(&fig.interpretation, 256).unwrap();
        assert!(!lattice.is_distributive());
        assert!(!lattice.is_empty());
        assert!(lattice.len() >= 5);
        assert_eq!(lattice.constants.len(), 3);
        // Theorem 1: L(I) satisfies exactly the PDs the interpretation does.
        for &pd in &fig.dependencies {
            assert!(lattice.satisfies_pd(&fig.arena, &fig.universe, pd).unwrap());
            assert!(fig.interpretation.satisfies_pd(&fig.arena, pd).unwrap());
        }
        let failing =
            parse_equation("B*(A+C) = (B*A)+(B*C)", &mut fig.universe, &mut fig.arena).unwrap();
        assert!(!lattice
            .satisfies_pd(&fig.arena, &fig.universe, failing)
            .unwrap());
        assert!(!fig
            .interpretation
            .satisfies_pd(&fig.arena, failing)
            .unwrap());
    }

    #[test]
    fn theorem1_agreement_on_many_pds() {
        let mut fig = fixtures::figure1();
        let lattice = InterpretationLattice::build(&fig.interpretation, 256).unwrap();
        let pds = [
            "A = A*B",
            "B = B*A",
            "A*B*C = A",
            "A+B = B",
            "C+B = A+B+C",
            "A*C = B*C",
            "B*(A+C) = B",
            "A+C = B+C",
        ];
        for text in pds {
            let pd = parse_equation(text, &mut fig.universe, &mut fig.arena).unwrap();
            assert_eq!(
                lattice.satisfies_pd(&fig.arena, &fig.universe, pd).unwrap(),
                fig.interpretation.satisfies_pd(&fig.arena, pd).unwrap(),
                "{text}"
            );
        }
    }

    #[test]
    fn figure2_lattices_are_isomorphic_with_four_elements() {
        let fig = fixtures::figure2();
        let l1 =
            InterpretationLattice::build(&canonical_interpretation(&fig.r1).unwrap(), 64).unwrap();
        let l2 =
            InterpretationLattice::build(&canonical_interpretation(&fig.r2).unwrap(), 64).unwrap();
        assert_eq!(l1.len(), 4);
        assert_eq!(l2.len(), 4);
        assert!(l1.is_isomorphic_to(&l2));
        assert!(l2.is_isomorphic_to(&l1));
        // Both are isomorphic to the 2-attribute Boolean lattice (a diamond).
        assert!(l1.lattice.is_isomorphic_to(&FiniteLattice::boolean(2)));
    }

    #[test]
    fn lattice_of_a_single_attribute_interpretation_is_a_point() {
        let mut universe = ps_base::Universe::new();
        let mut symbols = ps_base::SymbolTable::new();
        let a = universe.attr("A");
        let mut interp = crate::PartitionInterpretation::new();
        interp
            .set_named_blocks(
                a,
                vec![
                    (symbols.symbol("x"), vec![1, 2]),
                    (symbols.symbol("y"), vec![3]),
                ],
            )
            .unwrap();
        let lattice = InterpretationLattice::build(&interp, 16).unwrap();
        assert_eq!(lattice.len(), 1);
        assert!(lattice.is_distributive());
        assert!(lattice.is_modular());
        assert_eq!(lattice.stats.generators, 1);
    }
}
