//! Partition interpretations (Definitions 1, 2 and 4 of the paper).

use std::collections::{BTreeMap, HashMap};

use ps_base::{Attribute, Symbol, Universe};
use ps_lattice::{Equation, TermArena, TermId, TermNode};
use ps_partition::{Element, Partition, Population};
use ps_relation::Database;

use crate::{CoreError, Result};

/// The interpretation of one attribute: its population `p_A`, its atomic
/// partition `π_A`, and the naming function `f_A` that sends a symbol to a
/// block of `π_A` (every other symbol is sent to `∅`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeInterpretation {
    population: Population,
    atomic: Partition,
    /// Symbol → index of the block of `atomic` it names.  By Definition 1
    /// this is a bijection between a set of symbols and the blocks.
    naming: BTreeMap<Symbol, usize>,
}

impl AttributeInterpretation {
    /// Builds the interpretation of a single attribute from named blocks:
    /// each `(symbol, block)` pair says that `f_A(symbol)` is that block.
    ///
    /// The population is the union of the blocks; Definition 1's requirements
    /// (non-empty disjoint blocks, one distinct symbol per block) are
    /// enforced.
    pub fn from_named_blocks(
        attribute: Attribute,
        named_blocks: Vec<(Symbol, Vec<u32>)>,
    ) -> Result<Self> {
        let blocks: Vec<Vec<u32>> = named_blocks.iter().map(|(_, b)| b.clone()).collect();
        let atomic = Partition::from_blocks(blocks).map_err(CoreError::Partition)?;
        if atomic.is_empty() {
            return Err(CoreError::EmptyPopulation(attribute));
        }
        // `Partition::from_blocks` canonicalizes block order, so recover each
        // named block's canonical index by content (via any of its elements).
        let mut naming = BTreeMap::new();
        for (symbol, block) in &named_blocks {
            let representative = Element::new(*block.iter().min().ok_or(CoreError::Partition(
                ps_partition::PartitionError::EmptyBlock,
            ))?);
            let idx = atomic
                .block_index_of(representative)
                .expect("block elements are in the partition");
            if naming.insert(*symbol, idx).is_some() {
                return Err(CoreError::InvalidNaming {
                    attribute,
                    reason: format!("symbol {symbol} names two different blocks"),
                });
            }
        }
        Self::new(attribute, atomic, naming)
    }

    /// Builds the interpretation from an explicit partition and naming.
    pub fn new(
        attribute: Attribute,
        atomic: Partition,
        naming: BTreeMap<Symbol, usize>,
    ) -> Result<Self> {
        if atomic.is_empty() {
            return Err(CoreError::EmptyPopulation(attribute));
        }
        let interp = AttributeInterpretation {
            population: atomic.population().clone(),
            atomic,
            naming,
        };
        interp.validate(attribute)?;
        Ok(interp)
    }

    fn validate(&self, attribute: Attribute) -> Result<()> {
        // Every block must be named by exactly one symbol.
        let mut named = vec![0usize; self.atomic.num_blocks()];
        for (&symbol, &block) in &self.naming {
            if block >= self.atomic.num_blocks() {
                return Err(CoreError::InvalidNaming {
                    attribute,
                    reason: format!("symbol {symbol} names non-existent block {block}"),
                });
            }
            named[block] += 1;
        }
        if let Some(block) = named.iter().position(|&count| count == 0) {
            return Err(CoreError::InvalidNaming {
                attribute,
                reason: format!("block {block} has no name"),
            });
        }
        if let Some(block) = named.iter().position(|&count| count > 1) {
            return Err(CoreError::InvalidNaming {
                attribute,
                reason: format!("block {block} has more than one name"),
            });
        }
        Ok(())
    }

    /// The population `p_A`.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The atomic partition `π_A`.
    pub fn atomic(&self) -> &Partition {
        &self.atomic
    }

    /// The meaning `f_A(symbol)`: the named block, or `None` (meaning `∅`).
    pub fn block_of_symbol(&self, symbol: Symbol) -> Option<&[Element]> {
        self.naming.get(&symbol).map(|&idx| self.atomic.block(idx))
    }

    /// The symbol naming a given block index, if any.
    pub fn symbol_of_block(&self, block: usize) -> Option<Symbol> {
        self.naming
            .iter()
            .find(|(_, &b)| b == block)
            .map(|(&s, _)| s)
    }

    /// Iterates over `(symbol, block index)` pairs of the naming function.
    pub fn naming(&self) -> impl Iterator<Item = (Symbol, usize)> + '_ {
        self.naming.iter().map(|(&s, &b)| (s, b))
    }
}

/// A partition interpretation `I = {(p_A, π_A, f_A) | A ∈ 𝒰}`
/// (Definition 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionInterpretation {
    attrs: BTreeMap<Attribute, AttributeInterpretation>,
}

impl PartitionInterpretation {
    /// Creates an interpretation with no attributes (add them with
    /// [`PartitionInterpretation::set`] / [`PartitionInterpretation::set_named_blocks`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the interpretation of `attribute`.
    pub fn set(&mut self, attribute: Attribute, interpretation: AttributeInterpretation) {
        self.attrs.insert(attribute, interpretation);
    }

    /// Convenience: sets the interpretation of `attribute` from named blocks
    /// (see [`AttributeInterpretation::from_named_blocks`]).
    pub fn set_named_blocks(
        &mut self,
        attribute: Attribute,
        named_blocks: Vec<(Symbol, Vec<u32>)>,
    ) -> Result<()> {
        let interp = AttributeInterpretation::from_named_blocks(attribute, named_blocks)?;
        self.set(attribute, interp);
        Ok(())
    }

    /// The attributes this interpretation covers.
    pub fn attributes(&self) -> impl Iterator<Item = Attribute> + '_ {
        self.attrs.keys().copied()
    }

    /// Number of interpreted attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether no attribute is interpreted.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The interpretation of `attribute`, if present.
    pub fn get(&self, attribute: Attribute) -> Option<&AttributeInterpretation> {
        self.attrs.get(&attribute)
    }

    /// The interpretation of `attribute`, or an error.
    pub fn require(&self, attribute: Attribute) -> Result<&AttributeInterpretation> {
        self.get(attribute)
            .ok_or(CoreError::UninterpretedAttribute(attribute))
    }

    /// Evaluates a partition expression: the meaning of an attribute is its
    /// atomic partition, `*` is partition product and `+` partition sum
    /// (Section 3.1).  The returned [`Partition`] carries its population.
    pub fn eval(&self, arena: &TermArena, term: TermId) -> Result<Partition> {
        match arena.node(term) {
            TermNode::Atom(a) => Ok(self.require(a)?.atomic().clone()),
            TermNode::Meet(l, r) => Ok(self.eval(arena, l)?.product(&self.eval(arena, r)?)),
            TermNode::Join(l, r) => Ok(self.eval(arena, l)?.sum(&self.eval(arena, r)?)),
        }
    }

    /// The meaning of a relation scheme `R[U]`: the product of the atomic
    /// partitions of its attributes (Section 3.1), computed with the bulk
    /// entry point [`Partition::product_many`] (one in-place refinement per
    /// attribute, no intermediate partitions).
    pub fn meaning_of_scheme(&self, attrs: &ps_base::AttrSet) -> Result<Partition> {
        if attrs.is_empty() {
            return Err(CoreError::Relation(
                ps_relation::RelationError::EmptyAttributeSet("relation scheme"),
            ));
        }
        let atomics = attrs
            .iter()
            .map(|a| self.require(a).map(AttributeInterpretation::atomic))
            .collect::<Result<Vec<&Partition>>>()?;
        Ok(Partition::product_many(atomics))
    }

    /// The meaning of a tuple: the intersection `⋂_{A ∈ U} f_A(t[A])`
    /// (Section 3.1).  Returns the set of elements (possibly empty).  The
    /// tuple is addressed as a zero-copy [`ps_relation::RowRef`] view, which
    /// carries its relation (and hence its scheme) itself.
    pub fn meaning_of_tuple(&self, tuple: ps_relation::RowRef<'_>) -> Result<Vec<Element>> {
        let scheme = tuple.relation().scheme();
        let mut current: Option<Vec<Element>> = None;
        for attr in scheme.attrs().iter() {
            let symbol = tuple.get(attr).map_err(CoreError::Relation)?;
            let block = self.require(attr)?.block_of_symbol(symbol);
            let block: Vec<Element> = match block {
                None => return Ok(Vec::new()),
                Some(b) => b.to_vec(),
            };
            current = Some(match current {
                None => block,
                Some(prev) => prev.into_iter().filter(|e| block.contains(e)).collect(),
            });
            if matches!(&current, Some(c) if c.is_empty()) {
                return Ok(Vec::new());
            }
        }
        Ok(current.unwrap_or_default())
    }

    /// Definition 2: the interpretation satisfies database `d` iff every
    /// tuple of every relation has non-empty meaning.
    pub fn satisfies_database(&self, db: &Database) -> Result<bool> {
        for relation in db.relations() {
            for tuple in relation.iter() {
                if self.meaning_of_tuple(tuple)?.is_empty() {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Definition 3: the interpretation satisfies the PD `e = e′` iff the
    /// meanings of the two sides are the same partition *of the same
    /// population*.
    pub fn satisfies_pd(&self, arena: &TermArena, pd: Equation) -> Result<bool> {
        Ok(self.eval(arena, pd.lhs)? == self.eval(arena, pd.rhs)?)
    }

    /// Whether every PD in `pds` is satisfied.
    pub fn satisfies_all_pds(&self, arena: &TermArena, pds: &[Equation]) -> Result<bool> {
        for &pd in pds {
            if !self.satisfies_pd(arena, pd)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Definition 4.1: the **complete atomic data** assumption with respect
    /// to database `d`: for every attribute `A` and symbol `x`,
    /// `x ∈ d[A]  ⇔  f_A(x) ≠ ∅`.
    pub fn satisfies_cad(&self, db: &Database) -> Result<bool> {
        for (&attribute, interp) in &self.attrs {
            let domain: Vec<Symbol> = db.active_domain(attribute);
            // Every database symbol must have a non-empty meaning…
            for &symbol in &domain {
                if interp.block_of_symbol(symbol).is_none() {
                    return Ok(false);
                }
            }
            // …and every named symbol must occur in the database column.
            for (symbol, _) in interp.naming() {
                if !domain.contains(&symbol) {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Definition 4.2: the **equal atomic populations** assumption: all
    /// attributes share the same population.
    pub fn satisfies_eap(&self) -> bool {
        let mut populations = self.attrs.values().map(AttributeInterpretation::population);
        match populations.next() {
            None => true,
            Some(first) => populations.all(|p| p == first),
        }
    }

    /// Whether two attributes have disjoint populations — the additional
    /// assumption discussed after Definition 4, under which `+` computes the
    /// plain union of the two block families (Example c: every vehicle is
    /// either a car or a bicycle).
    pub fn populations_disjoint(&self, a: Attribute, b: Attribute) -> Result<bool> {
        Ok(self
            .require(a)?
            .population()
            .is_disjoint(self.require(b)?.population()))
    }

    /// The union of all populations (the set the canonical relation `R(I)` of
    /// Definition 6 ranges over).
    pub fn total_population(&self) -> Population {
        self.attrs
            .values()
            .fold(Population::new(), |acc, i| acc.union(i.population()))
    }

    /// Renders the interpretation (populations, partitions, namings) for the
    /// examples.
    pub fn render(&self, universe: &Universe, symbols: &ps_base::SymbolTable) -> String {
        let mut out = String::new();
        for (&attribute, interp) in &self.attrs {
            let name = universe.name(attribute).unwrap_or("?");
            out.push_str(&format!(
                "p_{name} = {}\nπ_{name} = {}\n",
                interp.population(),
                interp.atomic()
            ));
            let mut names: Vec<String> = interp
                .naming()
                .map(|(s, b)| {
                    format!(
                        "f_{name}({}) = {{{}}}",
                        symbols.render(s),
                        interp
                            .atomic()
                            .block(b)
                            .iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    )
                })
                .collect();
            names.sort();
            out.push_str(&names.join("  "));
            out.push('\n');
        }
        out
    }

    /// A dense map from attribute to its atomic partition, used when building
    /// the lattice `L(I)`.
    pub fn atomic_partitions(&self) -> HashMap<Attribute, Partition> {
        self.attrs
            .iter()
            .map(|(&a, i)| (a, i.atomic().clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_base::SymbolTable;
    use ps_lattice::parse_term;
    use ps_relation::DatabaseBuilder;

    /// The Figure 1 interpretation: populations {1,2,3,4},
    /// π_A = {{1},{4},{2,3}}, π_B = {{1,4},{2,3}}, π_C = {{1,2},{3,4}},
    /// f_A: a↦{1}, a1↦{4}, a2↦{2,3}; f_B: b↦{1,4}, b1↦{2,3};
    /// f_C: c↦{1,2}, c1↦{3,4}.
    pub(crate) fn figure1() -> (Universe, SymbolTable, PartitionInterpretation) {
        let mut universe = Universe::new();
        let mut symbols = SymbolTable::new();
        let (a, b, c) = (universe.attr("A"), universe.attr("B"), universe.attr("C"));
        let mut interp = PartitionInterpretation::new();
        interp
            .set_named_blocks(
                a,
                vec![
                    (symbols.symbol("a"), vec![1]),
                    (symbols.symbol("a1"), vec![4]),
                    (symbols.symbol("a2"), vec![2, 3]),
                ],
            )
            .unwrap();
        interp
            .set_named_blocks(
                b,
                vec![
                    (symbols.symbol("b"), vec![1, 4]),
                    (symbols.symbol("b1"), vec![2, 3]),
                ],
            )
            .unwrap();
        interp
            .set_named_blocks(
                c,
                vec![
                    (symbols.symbol("c"), vec![1, 2]),
                    (symbols.symbol("c1"), vec![3, 4]),
                ],
            )
            .unwrap();
        (universe, symbols, interp)
    }

    fn figure1_database(universe: &mut Universe, symbols: &mut SymbolTable) -> Database {
        DatabaseBuilder::new()
            .relation(
                universe,
                symbols,
                "R",
                &["A", "B", "C"],
                &[
                    &["a", "b", "c"],
                    &["a2", "b1", "c"],
                    &["a2", "b1", "c1"],
                    &["a1", "b", "c1"],
                ],
            )
            .unwrap()
            .build()
    }

    #[test]
    fn construction_validates_naming() {
        let mut universe = Universe::new();
        let mut symbols = SymbolTable::new();
        let a = universe.attr("A");
        let mut interp = PartitionInterpretation::new();
        // Same symbol naming two blocks is rejected.
        let s = symbols.symbol("x");
        let err = interp
            .set_named_blocks(a, vec![(s, vec![1]), (s, vec![2])])
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidNaming { .. }));
        // Empty block list is rejected.
        let err = interp.set_named_blocks(a, vec![]).unwrap_err();
        assert!(matches!(err, CoreError::EmptyPopulation(_)));
        // Overlapping blocks are rejected by the partition layer.
        let t = symbols.symbol("y");
        let err = interp
            .set_named_blocks(a, vec![(s, vec![1, 2]), (t, vec![2, 3])])
            .unwrap_err();
        assert!(matches!(err, CoreError::Partition(_)));
    }

    #[test]
    fn explicit_constructor_requires_bijective_naming() {
        let mut universe = Universe::new();
        let mut symbols = SymbolTable::new();
        let a = universe.attr("A");
        let partition = Partition::from_blocks(vec![vec![1], vec![2]]).unwrap();
        // Missing name for block 1.
        let mut naming = BTreeMap::new();
        naming.insert(symbols.symbol("x"), 0);
        let err = AttributeInterpretation::new(a, partition.clone(), naming.clone()).unwrap_err();
        assert!(matches!(err, CoreError::InvalidNaming { .. }));
        // Out-of-range block index.
        naming.insert(symbols.symbol("y"), 5);
        let err = AttributeInterpretation::new(a, partition.clone(), naming).unwrap_err();
        assert!(matches!(err, CoreError::InvalidNaming { .. }));
        // A correct bijection is accepted.
        let mut good = BTreeMap::new();
        good.insert(symbols.symbol("x"), 0);
        good.insert(symbols.symbol("y"), 1);
        let interp = AttributeInterpretation::new(a, partition, good).unwrap();
        assert_eq!(
            interp.symbol_of_block(0),
            Some(symbols.lookup("x").unwrap())
        );
        assert_eq!(interp.symbol_of_block(7), None);
    }

    #[test]
    fn figure1_satisfies_the_database_and_assumptions() {
        let (mut universe, mut symbols, interp) = figure1();
        let db = figure1_database(&mut universe, &mut symbols);
        assert!(interp.satisfies_database(&db).unwrap());
        assert!(interp.satisfies_cad(&db).unwrap());
        assert!(interp.satisfies_eap());
        assert_eq!(
            interp.total_population(),
            Population::range(5).iter().skip(1).collect()
        );
        assert_eq!(interp.len(), 3);
        assert!(!interp.is_empty());
        let rendered = interp.render(&universe, &symbols);
        assert!(rendered.contains("π_A"));
        assert!(rendered.contains("f_B(b)"));
    }

    #[test]
    fn figure1_tuple_meanings_match_the_paper() {
        let (mut universe, mut symbols, interp) = figure1();
        let db = figure1_database(&mut universe, &mut symbols);
        let r = &db.relations()[0];
        // The four tuples denote {1}, {2}, {3}, {4} respectively.
        let expected: Vec<Vec<u32>> = vec![vec![1], vec![2], vec![3], vec![4]];
        for (tuple, expect) in r.iter().zip(expected) {
            let meaning = interp.meaning_of_tuple(tuple).unwrap();
            let expect: Vec<Element> = expect.into_iter().map(Element::new).collect();
            assert_eq!(meaning, expect);
        }
    }

    #[test]
    fn tuple_with_unnamed_symbol_has_empty_meaning() {
        let (mut universe, mut symbols, interp) = figure1();
        // A database with a symbol the interpretation gives no meaning.
        let db = DatabaseBuilder::new()
            .relation(
                &mut universe,
                &mut symbols,
                "R",
                &["A", "B", "C"],
                &[&["zzz", "b", "c"]],
            )
            .unwrap()
            .build();
        assert!(!interp.satisfies_database(&db).unwrap());
        // CAD also fails: "zzz" appears in d[A] but f_A(zzz) = ∅.
        assert!(!interp.satisfies_cad(&db).unwrap());
    }

    #[test]
    fn figure1_satisfies_its_dependencies() {
        let (mut universe, _, interp) = figure1();
        let mut arena = TermArena::new();
        // A = A*B holds (every A-block refines a B-block).
        let lhs = parse_term("A", &mut universe, &mut arena).unwrap();
        let rhs = parse_term("A*B", &mut universe, &mut arena).unwrap();
        assert!(interp
            .satisfies_pd(&arena, Equation::new(lhs, rhs))
            .unwrap());
        // B + C = A + C (both are the indiscrete partition of {1,2,3,4}).
        let l2 = parse_term("B+C", &mut universe, &mut arena).unwrap();
        let r2 = parse_term("A+C", &mut universe, &mut arena).unwrap();
        assert!(interp.satisfies_pd(&arena, Equation::new(l2, r2)).unwrap());
        // B = B*C fails.
        let l3 = parse_term("B", &mut universe, &mut arena).unwrap();
        let r3 = parse_term("B*C", &mut universe, &mut arena).unwrap();
        assert!(!interp.satisfies_pd(&arena, Equation::new(l3, r3)).unwrap());
        assert!(interp
            .satisfies_all_pds(&arena, &[Equation::new(lhs, rhs), Equation::new(l2, r2)])
            .unwrap());
        assert!(!interp
            .satisfies_all_pds(&arena, &[Equation::new(lhs, rhs), Equation::new(l3, r3)])
            .unwrap());
    }

    #[test]
    fn figure1_distributivity_fails_in_the_interpretation() {
        // B*(A+C) ≠ (B*A)+(B*C): the non-distributivity observed in Figure 1.
        let (mut universe, _, interp) = figure1();
        let mut arena = TermArena::new();
        let lhs = parse_term("B*(A+C)", &mut universe, &mut arena).unwrap();
        let rhs = parse_term("(B*A)+(B*C)", &mut universe, &mut arena).unwrap();
        assert!(!interp
            .satisfies_pd(&arena, Equation::new(lhs, rhs))
            .unwrap());
    }

    #[test]
    fn meaning_of_scheme_is_the_product_of_atoms() {
        let (mut universe, _, interp) = figure1();
        let mut arena = TermArena::new();
        let abc: ps_base::AttrSet = vec![
            universe.lookup("A").unwrap(),
            universe.lookup("B").unwrap(),
            universe.lookup("C").unwrap(),
        ]
        .into();
        let by_scheme = interp.meaning_of_scheme(&abc).unwrap();
        let term = parse_term("A*B*C", &mut universe, &mut arena).unwrap();
        let by_term = interp.eval(&arena, term).unwrap();
        assert_eq!(by_scheme, by_term);
        // For Figure 1 the composite partition is discrete.
        assert!(by_scheme.is_discrete());
        assert_eq!(by_scheme.num_blocks(), 4);
    }

    #[test]
    fn eval_rejects_uninterpreted_attributes() {
        let (mut universe, _, interp) = figure1();
        let mut arena = TermArena::new();
        let term = parse_term("A*Z", &mut universe, &mut arena).unwrap();
        assert!(matches!(
            interp.eval(&arena, term),
            Err(CoreError::UninterpretedAttribute(_))
        ));
        let z = universe.lookup("Z").unwrap();
        assert!(interp.require(z).is_err());
    }

    #[test]
    fn example_c_disjoint_populations_make_sum_a_union() {
        // Example c: cars and bicycles have disjoint populations; the vehicle
        // registration partition is their sum, which is then just the union
        // of the two block families.
        let mut universe = Universe::new();
        let mut symbols = SymbolTable::new();
        let (car, bike, veh) = (
            universe.attr("Car"),
            universe.attr("Bike"),
            universe.attr("Veh"),
        );
        let mut interp = PartitionInterpretation::new();
        interp
            .set_named_blocks(
                car,
                vec![
                    (symbols.symbol("c1"), vec![1, 2]),
                    (symbols.symbol("c2"), vec![3]),
                ],
            )
            .unwrap();
        interp
            .set_named_blocks(
                bike,
                vec![
                    (symbols.symbol("b1"), vec![10]),
                    (symbols.symbol("b2"), vec![11, 12]),
                ],
            )
            .unwrap();
        interp
            .set_named_blocks(
                veh,
                vec![
                    (symbols.symbol("v1"), vec![1, 2]),
                    (symbols.symbol("v2"), vec![3]),
                    (symbols.symbol("v3"), vec![10]),
                    (symbols.symbol("v4"), vec![11, 12]),
                ],
            )
            .unwrap();
        assert!(interp.populations_disjoint(car, bike).unwrap());
        assert!(!interp.populations_disjoint(car, veh).unwrap());
        assert!(interp
            .populations_disjoint(universe.attr("Car"), bike)
            .unwrap());
        // Veh = Car + Bike holds, and the sum has exactly the four blocks.
        let mut arena = TermArena::new();
        let lhs = parse_term("Veh", &mut universe, &mut arena).unwrap();
        let rhs = parse_term("Car+Bike", &mut universe, &mut arena).unwrap();
        assert!(interp
            .satisfies_pd(&arena, Equation::new(lhs, rhs))
            .unwrap());
        let sum = interp.eval(&arena, rhs).unwrap();
        assert_eq!(sum.num_blocks(), 4);
        // Unknown attributes are reported as errors.
        let ghost = universe.attr("Ghost");
        assert!(interp.populations_disjoint(car, ghost).is_err());
    }

    #[test]
    fn eap_detects_unequal_populations() {
        let mut universe = Universe::new();
        let mut symbols = SymbolTable::new();
        let (a, b) = (universe.attr("A"), universe.attr("B"));
        let mut interp = PartitionInterpretation::new();
        interp
            .set_named_blocks(a, vec![(symbols.symbol("x"), vec![1, 2])])
            .unwrap();
        interp
            .set_named_blocks(b, vec![(symbols.symbol("y"), vec![1, 2, 3])])
            .unwrap();
        assert!(!interp.satisfies_eap());
        assert_eq!(interp.total_population().len(), 3);
        // Example a: A = A*B can still hold with p_A ⊊ p_B.
        let mut arena = TermArena::new();
        let lhs = parse_term("A", &mut universe, &mut arena).unwrap();
        let rhs = parse_term("A*B", &mut universe, &mut arena).unwrap();
        assert!(interp
            .satisfies_pd(&arena, Equation::new(lhs, rhs))
            .unwrap());
        // The dual form A+B = B holds as well (Section 3.2).
        let l2 = parse_term("A+B", &mut universe, &mut arena).unwrap();
        let r2 = parse_term("B", &mut universe, &mut arena).unwrap();
        assert!(interp.satisfies_pd(&arena, Equation::new(l2, r2)).unwrap());
    }

    #[test]
    fn cad_requires_named_symbols_to_appear_in_the_database() {
        let (mut universe, mut symbols, interp) = figure1();
        // Drop the tuple containing a1 from the database: f_A(a1) ≠ ∅ but a1
        // no longer occurs under column A, so CAD fails.
        let db = DatabaseBuilder::new()
            .relation(
                &mut universe,
                &mut symbols,
                "R",
                &["A", "B", "C"],
                &[&["a", "b", "c"], &["a2", "b1", "c"], &["a2", "b1", "c1"]],
            )
            .unwrap()
            .build();
        assert!(interp.satisfies_database(&db).unwrap());
        assert!(!interp.satisfies_cad(&db).unwrap());
    }
}
