//! Partition dependencies and functional partition dependencies
//! (Section 3.2).

use ps_base::{AttrSet, Universe};
use ps_lattice::{Equation, TermArena, TermId};

/// A partition dependency is an equation `e = e′` between partition
/// expressions (Definition 3).  It is represented directly as a
/// [`ps_lattice::Equation`] over a [`TermArena`].
pub type Pd = Equation;

/// A **functional partition dependency** (FPD): a PD of the special form
/// `X = X · Y` for non-empty attribute sets `X`, `Y` (Section 3.2).
///
/// By the duality of `*` and `+` it can equivalently be written
/// `Y = Y + X`, or `X ≤ Y` in the natural partial order; and by Theorem 3 it
/// is the partition-semantic counterpart of the FD `X → Y`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fpd {
    /// The "determining" side `X`.
    pub lhs: AttrSet,
    /// The "determined" side `Y`.
    pub rhs: AttrSet,
}

impl Fpd {
    /// Creates the FPD `X = X·Y`.
    ///
    /// # Panics
    /// Panics if either side is empty.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        assert!(
            !lhs.is_empty() && !rhs.is_empty(),
            "FPD sides must be non-empty"
        );
        Fpd { lhs, rhs }
    }

    /// The FPD corresponding to the FD `X → Y` (Theorem 3 / Section 5.3).
    pub fn from_fd(fd: &ps_relation::Fd) -> Self {
        Fpd::new(fd.lhs.clone(), fd.rhs.clone())
    }

    /// The FD `X → Y` corresponding to this FPD (the map `E ↦ E_F` of
    /// Section 4.3).
    pub fn to_fd(&self) -> ps_relation::Fd {
        ps_relation::Fd::new(self.lhs.clone(), self.rhs.clone())
    }

    /// The equation `X = X·Y` (the defining form of the FPD).
    pub fn as_meet_equation(&self, arena: &mut TermArena) -> Equation {
        let x = arena.meet_of_attrs(&self.lhs);
        let y = arena.meet_of_attrs(&self.rhs);
        let xy = arena.meet(x, y);
        Equation::new(x, xy)
    }

    /// The dual equation `Y = Y + X` (equivalent by the lattice duality).
    pub fn as_join_equation(&self, arena: &mut TermArena) -> Equation {
        let x = arena.meet_of_attrs(&self.lhs);
        let y = arena.meet_of_attrs(&self.rhs);
        let yx = arena.join(y, x);
        Equation::new(y, yx)
    }

    /// The two sides as terms, for use with the `≤` order (`X ≤ Y`).
    pub fn as_leq_terms(&self, arena: &mut TermArena) -> (TermId, TermId) {
        (
            arena.meet_of_attrs(&self.lhs),
            arena.meet_of_attrs(&self.rhs),
        )
    }

    /// Renders the FPD as `X=X*Y` using attribute names.
    pub fn render(&self, universe: &Universe) -> String {
        let x = universe.render_set(&self.lhs);
        let y = universe.render_set(&self.rhs);
        format!("{x}={x}*{y}")
    }
}

/// Converts a list of FDs into the corresponding FPDs (the map `Σ ↦ E_Σ` of
/// Section 5.3).
pub fn fpds_of_fds(fds: &[ps_relation::Fd]) -> Vec<Fpd> {
    fds.iter().map(Fpd::from_fd).collect()
}

/// Converts a list of FPDs into the corresponding FDs (the map `E ↦ E_F` of
/// Section 4.3).
pub fn fds_of_fpds(fpds: &[Fpd]) -> Vec<ps_relation::Fd> {
    fpds.iter().map(Fpd::to_fd).collect()
}

/// Converts FPDs into their defining meet equations, for use with the
/// implication machinery.
pub fn equations_of_fpds(fpds: &[Fpd], arena: &mut TermArena) -> Vec<Equation> {
    fpds.iter().map(|f| f.as_meet_equation(arena)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_relation::fd;

    fn setup() -> (Universe, Vec<ps_base::Attribute>) {
        let mut u = Universe::new();
        let attrs = u.attrs(["A", "B", "C"]);
        (u, attrs)
    }

    #[test]
    fn fd_round_trip() {
        let (_, a) = setup();
        let original = fd(&[a[0], a[1]], &[a[2]]);
        let fpd = Fpd::from_fd(&original);
        assert_eq!(fpd.to_fd(), original);
        let fpds = fpds_of_fds(std::slice::from_ref(&original));
        assert_eq!(fds_of_fpds(&fpds), vec![original]);
    }

    #[test]
    fn equation_forms() {
        let (u, a) = setup();
        let fpd = Fpd::new(AttrSet::singleton(a[0]), AttrSet::singleton(a[1]));
        let mut arena = TermArena::new();
        let meet_form = fpd.as_meet_equation(&mut arena);
        assert_eq!(meet_form.display(&arena, &u), "A=A*B");
        let join_form = fpd.as_join_equation(&mut arena);
        assert_eq!(join_form.display(&arena, &u), "B=B+A");
        let (x, y) = fpd.as_leq_terms(&mut arena);
        assert_eq!(arena.display(x, &u), "A");
        assert_eq!(arena.display(y, &u), "B");
        assert_eq!(fpd.render(&u), "A=A*B");
    }

    #[test]
    fn compound_sides_render_as_products() {
        let (u, a) = setup();
        let fpd = Fpd::new(vec![a[0], a[1]].into(), AttrSet::singleton(a[2]));
        assert_eq!(fpd.render(&u), "AB=AB*C");
        let mut arena = TermArena::new();
        let eq = fpd.as_meet_equation(&mut arena);
        assert_eq!(eq.display(&arena, &u), "A*B=A*B*C");
    }

    #[test]
    fn equations_of_fpds_builds_one_equation_per_fpd() {
        let (_, a) = setup();
        let fpds = vec![
            Fpd::new(AttrSet::singleton(a[0]), AttrSet::singleton(a[1])),
            Fpd::new(AttrSet::singleton(a[1]), AttrSet::singleton(a[2])),
        ];
        let mut arena = TermArena::new();
        assert_eq!(equations_of_fpds(&fpds, &mut arena).len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sides_are_rejected() {
        let (_, a) = setup();
        let _ = Fpd::new(AttrSet::new(), AttrSet::singleton(a[0]));
    }
}
