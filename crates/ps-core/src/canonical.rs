//! Canonical constructions between relations and partition interpretations
//! (Definitions 5–7 and Theorem 3).
//!
//! * [`canonical_interpretation`] — `I(r)`: the population consists of one
//!   element per tuple; `f_A(x)` is the set of (indices of) tuples whose `A`
//!   entry is `x`; the atomic partition `π_A` is the one induced by `f_A`.
//! * [`canonical_relation`] — `R(I)`: one tuple per element of the union of
//!   the populations; `t_i[A] = x` if `i ∈ f_A(x)`, and a fresh symbol
//!   otherwise.
//! * [`relation_satisfies_pd`] — Definition 7: `r ⊨ δ  ⇔  I(r) ⊨ δ`.
//!   This is the notion of PD satisfaction *by a relation* used everywhere
//!   in the expressiveness results of Section 4.

use std::collections::HashMap;

use ps_base::{Symbol, SymbolTable};
use ps_lattice::{Equation, TermArena};
use ps_partition::Element;
use ps_relation::{Relation, RelationScheme, Tuple};

use crate::{PartitionInterpretation, Result};

/// Builds the canonical interpretation `I(r)` of a relation (Definition 5).
///
/// The population of every attribute is `{0, …, |r|−1}` (one element per
/// tuple, in the relation's iteration order), so `I(r)` always satisfies the
/// EAP assumption.
pub fn canonical_interpretation(relation: &Relation) -> Result<PartitionInterpretation> {
    let mut interpretation = PartitionInterpretation::new();
    let scheme = relation.scheme();
    for attribute in scheme.attrs().iter() {
        let mut by_symbol: HashMap<Symbol, Vec<u32>> = HashMap::new();
        for (idx, tuple) in relation.iter().enumerate() {
            let symbol = tuple.get(attribute)?;
            by_symbol.entry(symbol).or_default().push(idx as u32);
        }
        let named_blocks: Vec<(Symbol, Vec<u32>)> = {
            let mut pairs: Vec<_> = by_symbol.into_iter().collect();
            pairs.sort_by_key(|(s, _)| *s);
            pairs
        };
        if named_blocks.is_empty() {
            // An empty relation yields an interpretation with no attributes
            // rather than empty populations (Definition 1 forbids the latter).
            continue;
        }
        interpretation.set_named_blocks(attribute, named_blocks)?;
    }
    Ok(interpretation)
}

/// Builds the canonical relation `R(I)` of an interpretation (Definition 6).
///
/// For each element `i` of the union of the populations there is one tuple
/// `t_i`: `t_i[A]` is the symbol naming the block of `π_A` containing `i`,
/// or a fresh symbol (unique to `i` and `A`) when `i ∉ p_A`.
pub fn canonical_relation(
    interpretation: &PartitionInterpretation,
    symbols: &mut SymbolTable,
    name: &str,
) -> Result<Relation> {
    let attrs: ps_base::AttrSet = interpretation.attributes().collect();
    let scheme = RelationScheme::new(name, attrs.clone());
    let mut relation = Relation::new(scheme.clone());
    for element in interpretation.total_population().iter() {
        let mut values: Vec<Symbol> = Vec::with_capacity(attrs.len());
        for attribute in attrs.iter() {
            let attr_interp = interpretation.require(attribute)?;
            let value = match attr_interp.atomic().block_index_of(element) {
                Some(block) => attr_interp
                    .symbol_of_block(block)
                    .expect("every block of a valid interpretation has a name"),
                None => symbols.fresh(),
            };
            values.push(value);
        }
        relation.insert(Tuple::new(&scheme, values)?)?;
    }
    Ok(relation)
}

/// Definition 7: a relation satisfies a PD iff its canonical interpretation
/// does.
pub fn relation_satisfies_pd(relation: &Relation, arena: &TermArena, pd: Equation) -> Result<bool> {
    let interpretation = canonical_interpretation(relation)?;
    if interpretation.is_empty() {
        // The empty relation has the empty interpretation, which satisfies
        // every PD vacuously (both sides denote the empty partition).
        return Ok(true);
    }
    interpretation.satisfies_pd(arena, pd)
}

/// Whether a relation satisfies every PD in the list.
pub fn relation_satisfies_all_pds(
    relation: &Relation,
    arena: &TermArena,
    pds: &[Equation],
) -> Result<bool> {
    let interpretation = canonical_interpretation(relation)?;
    if interpretation.is_empty() {
        return Ok(true);
    }
    interpretation.satisfies_all_pds(arena, pds)
}

/// The tuple indices of `relation`, as population elements — handy when a
/// caller wants to relate `I(r)`'s population back to tuples.
pub fn tuple_elements(relation: &Relation) -> Vec<Element> {
    (0..relation.len() as u32).map(Element::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependency::Fpd;
    use ps_base::{AttrSet, Universe};
    use ps_lattice::parse_term;
    use ps_relation::{fd, DatabaseBuilder};

    struct Fixture {
        universe: Universe,
        symbols: SymbolTable,
    }

    fn fixture() -> Fixture {
        Fixture {
            universe: Universe::new(),
            symbols: SymbolTable::new(),
        }
    }

    fn relation(f: &mut Fixture, rows: &[[&str; 3]]) -> Relation {
        let rows_ref: Vec<&[&str]> = rows.iter().map(|r| r.as_slice()).collect();
        DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R",
                &["A", "B", "C"],
                &rows_ref,
            )
            .unwrap()
            .build()
            .relations()[0]
            .clone()
    }

    #[test]
    fn canonical_interpretation_of_figure2_r1() {
        let mut f = fixture();
        let r1 = relation(
            &mut f,
            &[
                ["a", "b1", "c1"],
                ["a", "b1", "c2"],
                ["a", "b2", "c1"],
                ["a", "b2", "c2"],
            ],
        );
        let interp = canonical_interpretation(&r1).unwrap();
        assert!(interp.satisfies_eap());
        let a = f.universe.lookup("A").unwrap();
        let b = f.universe.lookup("B").unwrap();
        // π_A is the indiscrete partition of {0,1,2,3}; π_B has two blocks.
        assert_eq!(interp.require(a).unwrap().atomic().num_blocks(), 1);
        assert_eq!(interp.require(b).unwrap().atomic().num_blocks(), 2);
        // I(r) satisfies r (every tuple denotes a non-empty set).
        let db = {
            let mut db = ps_relation::Database::new();
            db.add(r1.clone());
            db
        };
        assert!(interp.satisfies_database(&db).unwrap());
    }

    #[test]
    fn theorem3b_fd_satisfaction_coincides_with_fpd_satisfaction() {
        let mut f = fixture();
        // r satisfies A→B but not A→C.
        let r = relation(
            &mut f,
            &[["a", "b", "c1"], ["a", "b", "c2"], ["a2", "b2", "c1"]],
        );
        let a = f.universe.lookup("A").unwrap();
        let b = f.universe.lookup("B").unwrap();
        let c = f.universe.lookup("C").unwrap();
        let mut arena = TermArena::new();
        let good_fd = fd(&[a], &[b]);
        let bad_fd = fd(&[a], &[c]);
        let good_pd = Fpd::from_fd(&good_fd).as_meet_equation(&mut arena);
        let bad_pd = Fpd::from_fd(&bad_fd).as_meet_equation(&mut arena);
        assert_eq!(
            r.satisfies_fd(&good_fd),
            relation_satisfies_pd(&r, &arena, good_pd).unwrap()
        );
        assert_eq!(
            r.satisfies_fd(&bad_fd),
            relation_satisfies_pd(&r, &arena, bad_pd).unwrap()
        );
        assert!(r.satisfies_fd(&good_fd));
        assert!(!r.satisfies_fd(&bad_fd));
        // The dual join form is satisfied exactly when the meet form is.
        let good_join = Fpd::from_fd(&good_fd).as_join_equation(&mut arena);
        assert!(relation_satisfies_pd(&r, &arena, good_join).unwrap());
    }

    #[test]
    fn round_trip_r_of_i_of_r_is_r() {
        // Because I(r) satisfies EAP, R(I(r)) = r (Section 4.1).
        let mut f = fixture();
        let r = relation(
            &mut f,
            &[["a", "b", "c"], ["a2", "b", "c1"], ["a", "b2", "c"]],
        );
        let interp = canonical_interpretation(&r).unwrap();
        let back = canonical_relation(&interp, &mut f.symbols, "R").unwrap();
        assert_eq!(back.len(), r.len());
        for tuple in r.iter() {
            assert!(back.contains_row(tuple), "missing tuple {tuple}");
        }
        for tuple in back.iter() {
            assert!(r.contains_row(tuple), "extra tuple {tuple}");
        }
    }

    #[test]
    fn canonical_relation_pads_elements_outside_a_population() {
        // An interpretation violating EAP: p_A = {1,2}, p_B = {1,2,3}.
        let mut universe = Universe::new();
        let mut symbols = SymbolTable::new();
        let (a, b) = (universe.attr("A"), universe.attr("B"));
        let mut interp = PartitionInterpretation::new();
        interp
            .set_named_blocks(a, vec![(symbols.symbol("x"), vec![1, 2])])
            .unwrap();
        interp
            .set_named_blocks(b, vec![(symbols.symbol("y"), vec![1, 2, 3])])
            .unwrap();
        let r = canonical_relation(&interp, &mut symbols, "W").unwrap();
        // Elements 1 and 2 are in the same block of every atomic partition,
        // so their tuples coincide and the relation keeps only one copy
        // (the collapse discussed after Definition 6 in Section 4.1).
        assert_eq!(r.len(), 2);
        // Element 3 is outside p_A, so its A entry is a fresh symbol.
        let fresh_count = r
            .iter()
            .flat_map(|t| t.values())
            .filter(|&s| symbols.is_fresh(s))
            .count();
        assert_eq!(fresh_count, 1);
    }

    #[test]
    fn characterization_ii_connectivity_example() {
        // From Section 4.1 (II): r ⊨ C = A+B iff equal C values correspond
        // exactly to chain-connectedness on A/B values.
        let mut f = fixture();
        // Two edges {1,2} and {3,4} in separate components.
        let r = relation(
            &mut f,
            &[
                ["v1", "v2", "comp1"],
                ["v2", "v1", "comp1"],
                ["v1", "v1", "comp1"],
                ["v2", "v2", "comp1"],
                ["v3", "v4", "comp2"],
                ["v4", "v3", "comp2"],
                ["v3", "v3", "comp2"],
                ["v4", "v4", "comp2"],
            ],
        );
        let mut arena = TermArena::new();
        let pd = {
            let lhs = parse_term("C", &mut f.universe, &mut arena).unwrap();
            let rhs = parse_term("A+B", &mut f.universe, &mut arena).unwrap();
            Equation::new(lhs, rhs)
        };
        assert!(relation_satisfies_pd(&r, &arena, pd).unwrap());
        // Mislabelling one edge's component breaks the PD.
        let bad = relation(
            &mut f,
            &[
                ["v1", "v2", "comp1"],
                ["v2", "v1", "comp1"],
                ["v1", "v1", "comp1"],
                ["v2", "v2", "comp2"],
            ],
        );
        assert!(!relation_satisfies_pd(&bad, &arena, pd).unwrap());
    }

    #[test]
    fn empty_relation_satisfies_everything() {
        let mut f = fixture();
        let scheme = RelationScheme::new(
            "R",
            AttrSet::from(vec![f.universe.attr("A"), f.universe.attr("B")]),
        );
        let empty = Relation::new(scheme);
        let mut arena = TermArena::new();
        let pd = {
            let lhs = parse_term("A", &mut f.universe, &mut arena).unwrap();
            let rhs = parse_term("B", &mut f.universe, &mut arena).unwrap();
            Equation::new(lhs, rhs)
        };
        assert!(relation_satisfies_pd(&empty, &arena, pd).unwrap());
        assert!(relation_satisfies_all_pds(&empty, &arena, &[pd]).unwrap());
        assert!(tuple_elements(&empty).is_empty());
    }

    #[test]
    fn product_dependency_characterization_i() {
        // (I): r ⊨ C = A*B iff equal C values correspond exactly to equality
        // on both A and B.
        let mut f = fixture();
        let good = relation(
            &mut f,
            &[
                ["a1", "b1", "c1"],
                ["a1", "b2", "c2"],
                ["a2", "b1", "c3"],
                ["a1", "b1", "c1"],
            ],
        );
        let mut arena = TermArena::new();
        let pd = {
            let lhs = parse_term("C", &mut f.universe, &mut arena).unwrap();
            let rhs = parse_term("A*B", &mut f.universe, &mut arena).unwrap();
            Equation::new(lhs, rhs)
        };
        assert!(relation_satisfies_pd(&good, &arena, pd).unwrap());
        let bad = relation(&mut f, &[["a1", "b1", "c1"], ["a1", "b2", "c1"]]);
        assert!(!relation_satisfies_pd(&bad, &arena, pd).unwrap());
    }
}
