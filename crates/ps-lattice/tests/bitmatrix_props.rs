//! Property tests pinning the word-parallel [`BitMatrix`] delta operations
//! to their per-bit references.
//!
//! The saturation hot path of the implication engine is the chunked,
//! split-borrow implementation of `or_row_into_delta` /
//! `or_and_rows_into_delta` / `union_rows_into_delta`; correctness must not
//! depend on the width being a word multiple.  Widths are drawn to cluster
//! around the 64-bit boundaries and every operation is checked for (a) the
//! same resulting matrix, (b) the same changed verdict and (c) the same
//! delta set as the per-bit loop over `get`/`set`.

use proptest::prelude::*;
use ps_lattice::BitMatrix;

/// Widths flanking the word boundaries, plus a few interior ones.
fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        7usize..=10,
        62usize..=66,
        126usize..=130,
        Just(192usize),
    ]
}

/// A matrix of dimension `n` with each listed `(row, col)` bit set
/// (coordinates are taken modulo the dimension).
fn matrix_from(n: usize, bits: &[(usize, usize)]) -> BitMatrix {
    let mut m = BitMatrix::new(n);
    for &(r, c) in bits {
        m.set(r % n, c % n);
    }
    m
}

fn sorted(mut v: Vec<usize>) -> Vec<usize> {
    v.sort_unstable();
    v
}

proptest! {
    #[test]
    fn or_row_into_delta_matches_per_bit(
        n in arb_dim(),
        bits in proptest::collection::vec((0usize..4, 0usize..200), 0..60),
        src in 0usize..4,
        dst in 0usize..4,
    ) {
        prop_assume!(n >= 4);
        let mut fast = matrix_from(n, &bits);
        let mut slow = fast.clone();
        let (mut df, mut ds) = (Vec::new(), Vec::new());
        let changed_fast = fast.or_row_into_delta(src, dst, &mut df);
        let changed_slow = slow.or_row_into_delta_per_bit(src, dst, &mut ds);
        prop_assert_eq!(changed_fast, changed_slow);
        prop_assert_eq!(sorted(df), sorted(ds));
        prop_assert_eq!(&fast, &slow);
        fast.debug_validate_tails();
    }

    #[test]
    fn or_and_rows_into_delta_matches_per_bit(
        n in arb_dim(),
        bits in proptest::collection::vec((0usize..5, 0usize..200), 0..80),
        a in 0usize..5,
        b in 0usize..5,
        dst in 0usize..5,
    ) {
        prop_assume!(n >= 5);
        let mut fast = matrix_from(n, &bits);
        let mut slow = fast.clone();
        let (mut df, mut ds) = (Vec::new(), Vec::new());
        let changed_fast = fast.or_and_rows_into_delta(a, b, dst, &mut df);
        let changed_slow = slow.or_and_rows_into_delta_per_bit(a, b, dst, &mut ds);
        prop_assert_eq!(changed_fast, changed_slow);
        prop_assert_eq!(sorted(df), sorted(ds));
        prop_assert_eq!(&fast, &slow);
        fast.debug_validate_tails();
    }

    /// The batched union equals the fold of single-row ORs: same matrix,
    /// same union of deltas (each column reported exactly once).
    #[test]
    fn union_rows_equals_sequential_ors(
        n in arb_dim(),
        bits in proptest::collection::vec((0usize..6, 0usize..200), 0..80),
        srcs in proptest::collection::vec(0usize..6, 0..5),
        dst in 0usize..6,
    ) {
        prop_assume!(n >= 6);
        let mut batched = matrix_from(n, &bits);
        let mut folded = batched.clone();
        let mut db = Vec::new();
        let changed_batched = batched.union_rows_into_delta(&srcs, dst, &mut db);
        let mut dfold = Vec::new();
        let mut changed_folded = false;
        for &src in &srcs {
            changed_folded |= folded.or_row_into_delta(src, dst, &mut dfold);
        }
        prop_assert_eq!(changed_batched, changed_folded);
        prop_assert_eq!(sorted(db), sorted(dfold));
        prop_assert_eq!(&batched, &folded);
        batched.debug_validate_tails();
    }

    /// Growing never disturbs existing bits or the tail invariant, at any
    /// width pair (including non-word-multiple → non-word-multiple).
    #[test]
    fn grow_preserves_bits_at_any_width(
        n in arb_dim(),
        extra in 0usize..70,
        bits in proptest::collection::vec((0usize..200, 0usize..200), 0..40),
    ) {
        let mut m = matrix_from(n, &bits);
        let before: Vec<(usize, usize)> =
            (0..n).flat_map(|r| m.iter_row(r).map(move |c| (r, c))).collect();
        m.grow(n + extra);
        m.debug_validate_tails();
        let after: Vec<(usize, usize)> =
            (0..n).flat_map(|r| m.iter_row(r).map(move |c| (r, c))).collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(m.count_ones(), {
            let mut dedup: Vec<(usize, usize)> =
                bits.iter().map(|&(r, c)| (r % n, c % n)).collect();
            dedup.sort_unstable();
            dedup.dedup();
            dedup.len()
        });
    }
}
