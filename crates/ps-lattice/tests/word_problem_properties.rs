//! Property-based tests for the uniform word problem for lattices.
//!
//! Five families of properties:
//!
//! 1. the two saturation strategies of algorithm ALG compute the same
//!    entailment relation;
//! 2. with `E = ∅`, ALG agrees with the free-lattice order `≤_id`
//!    (Lemma 8.2 / Lemma 9.2);
//! 3. **soundness against finite models**: if every equation of `E` holds in
//!    a concrete finite lattice under a concrete assignment, then every
//!    equation ALG derives from `E` also holds there (Theorem 8, the
//!    "only lattices that satisfy E matter" direction);
//! 4. the cached [`ImplicationEngine`] — fresh builds, incremental
//!    extension, and batched queries alike — is pinned to the
//!    `NaiveFixpoint` reference strategy on random equation sets;
//! 5. the term/equation printers round-trip through the parser onto the
//!    same hash-consed [`TermId`]s.

use proptest::prelude::*;
use std::collections::HashMap;

use ps_base::{Attribute, Universe};
use ps_lattice::{
    free_order, parse_equation, parse_term, word_problem, Algorithm, Equation, FiniteLattice,
    ImplicationEngine, TermArena, TermId,
};

/// A small fixed universe of four attributes shared by all generated terms.
fn universe() -> (Universe, Vec<Attribute>) {
    let mut u = Universe::new();
    let attrs = u.attrs(["A", "B", "C", "D"]);
    (u, attrs)
}

/// A strategy producing random term *shapes*: 0 = atom, 1 = meet, 2 = join,
/// encoded as a recursive tree.
#[derive(Debug, Clone)]
enum Shape {
    Atom(u8),
    Meet(Box<Shape>, Box<Shape>),
    Join(Box<Shape>, Box<Shape>),
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    let leaf = (0u8..4).prop_map(Shape::Atom);
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Shape::Meet(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| Shape::Join(Box::new(l), Box::new(r))),
        ]
    })
}

fn build(shape: &Shape, attrs: &[Attribute], arena: &mut TermArena) -> TermId {
    match shape {
        Shape::Atom(i) => arena.atom(attrs[*i as usize % attrs.len()]),
        Shape::Meet(l, r) => {
            let lt = build(l, attrs, arena);
            let rt = build(r, attrs, arena);
            arena.meet(lt, rt)
        }
        Shape::Join(l, r) => {
            let lt = build(l, attrs, arena);
            let rt = build(r, attrs, arena);
            arena.join(lt, rt)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn naive_and_worklist_agree(
        eq_shapes in prop::collection::vec((arb_shape(), arb_shape()), 0..4),
        goal in (arb_shape(), arb_shape()),
    ) {
        let (_, attrs) = universe();
        let mut arena = TermArena::new();
        let equations: Vec<Equation> = eq_shapes
            .iter()
            .map(|(l, r)| Equation::new(build(l, &attrs, &mut arena), build(r, &attrs, &mut arena)))
            .collect();
        let goal = Equation::new(build(&goal.0, &attrs, &mut arena), build(&goal.1, &attrs, &mut arena));
        let naive = word_problem::entails(&arena, &equations, goal, Algorithm::NaiveFixpoint);
        let fast = word_problem::entails(&arena, &equations, goal, Algorithm::Worklist);
        prop_assert_eq!(naive, fast);
    }

    #[test]
    fn empty_e_matches_the_free_order(lhs in arb_shape(), rhs in arb_shape()) {
        let (_, attrs) = universe();
        let mut arena = TermArena::new();
        let l = build(&lhs, &attrs, &mut arena);
        let r = build(&rhs, &attrs, &mut arena);
        for algo in [Algorithm::NaiveFixpoint, Algorithm::Worklist] {
            prop_assert_eq!(
                word_problem::entails_leq(&arena, &[], l, r, algo),
                free_order::leq_id(&arena, l, r)
            );
        }
    }

    #[test]
    fn derived_equations_hold_in_finite_models_satisfying_e(
        term_shapes in prop::collection::vec(arb_shape(), 2..6),
        goal_pair in (0usize..6, 0usize..6),
        assignment_seed in prop::collection::vec(0usize..5, 4),
        lattice_choice in 0usize..3,
    ) {
        let (u, attrs) = universe();
        let mut arena = TermArena::new();
        let lattice = match lattice_choice {
            0 => FiniteLattice::m3(),
            1 => FiniteLattice::n5(),
            _ => FiniteLattice::chain(5),
        };
        // A concrete assignment of lattice elements to the four attributes.
        let assignment: HashMap<Attribute, usize> = attrs
            .iter()
            .zip(assignment_seed.iter())
            .map(|(&a, &v)| (a, v % lattice.len()))
            .collect();
        // Build terms and evaluate them in the model.
        let terms: Vec<TermId> = term_shapes.iter().map(|s| build(s, &attrs, &mut arena)).collect();
        let values: Vec<usize> = terms
            .iter()
            .map(|&t| lattice.evaluate(&arena, t, &assignment, &u).unwrap())
            .collect();
        // E consists of every equation between generated terms that happens
        // to hold in the model, so the model satisfies E by construction.
        let mut equations = Vec::new();
        for i in 0..terms.len() {
            for j in (i + 1)..terms.len() {
                if values[i] == values[j] {
                    equations.push(Equation::new(terms[i], terms[j]));
                }
            }
        }
        // Pick a goal among the generated terms; if ALG derives it from E it
        // must hold in the model (soundness).
        let gi = goal_pair.0 % terms.len();
        let gj = goal_pair.1 % terms.len();
        let goal = Equation::new(terms[gi], terms[gj]);
        for algo in [Algorithm::NaiveFixpoint, Algorithm::Worklist] {
            if word_problem::entails(&arena, &equations, goal, algo) {
                prop_assert!(
                    lattice.satisfies(&arena, goal, &assignment, &u).unwrap(),
                    "ALG derived an equation that fails in a model satisfying E"
                );
            }
        }
    }

    #[test]
    fn engine_fresh_build_matches_naive_fixpoint(
        eq_shapes in prop::collection::vec((arb_shape(), arb_shape()), 0..4),
        goal_shapes in prop::collection::vec((arb_shape(), arb_shape()), 1..5),
    ) {
        let (_, attrs) = universe();
        let mut arena = TermArena::new();
        let equations: Vec<Equation> = eq_shapes
            .iter()
            .map(|(l, r)| Equation::new(build(l, &attrs, &mut arena), build(r, &attrs, &mut arena)))
            .collect();
        let goals: Vec<Equation> = goal_shapes
            .iter()
            .map(|(l, r)| Equation::new(build(l, &attrs, &mut arena), build(r, &attrs, &mut arena)))
            .collect();
        let mut engine = ImplicationEngine::new(&arena, &equations);
        for &goal in &goals {
            let reference = word_problem::entails(&arena, &equations, goal, Algorithm::NaiveFixpoint);
            prop_assert_eq!(engine.entails_goal(&arena, goal), reference);
        }
        // The engine's arc count over the final V matches a reference order
        // built over the same V, and its firing counter saw every arc once.
        let goal_terms: Vec<TermId> = goals.iter().flat_map(|g| [g.lhs, g.rhs]).collect();
        let order = word_problem::DerivedOrder::build(
            &arena, &equations, &goal_terms, Algorithm::NaiveFixpoint,
        );
        prop_assert_eq!(engine.num_arcs(), order.num_arcs());
        prop_assert_eq!(engine.rule_firings(), engine.num_arcs());
    }

    #[test]
    fn engine_incremental_and_batched_queries_match_naive_fixpoint(
        eq_shapes in prop::collection::vec((arb_shape(), arb_shape()), 0..4),
        goal_shapes in prop::collection::vec((arb_shape(), arb_shape()), 1..5),
    ) {
        let (_, attrs) = universe();
        let mut arena = TermArena::new();
        let equations: Vec<Equation> = eq_shapes
            .iter()
            .map(|(l, r)| Equation::new(build(l, &attrs, &mut arena), build(r, &attrs, &mut arena)))
            .collect();
        let goals: Vec<Equation> = goal_shapes
            .iter()
            .map(|(l, r)| Equation::new(build(l, &attrs, &mut arena), build(r, &attrs, &mut arena)))
            .collect();
        let reference: Vec<bool> = goals
            .iter()
            .map(|&g| word_problem::entails(&arena, &equations, g, Algorithm::NaiveFixpoint))
            .collect();
        // Batched: one engine, one V extension covering every goal.
        let mut batched = ImplicationEngine::new(&arena, &equations);
        prop_assert_eq!(batched.entails_many(&arena, &goals), reference.clone());
        // Incremental: extend V goal by goal; earlier verdicts must survive
        // later extensions (Lemma 9.2: enlarging V never changes Γ on old
        // terms).
        let mut incremental = ImplicationEngine::new(&arena, &equations);
        for (i, &goal) in goals.iter().enumerate() {
            prop_assert_eq!(incremental.entails_goal(&arena, goal), reference[i]);
            for j in 0..=i {
                prop_assert_eq!(incremental.entails(goals[j]), Some(reference[j]));
            }
        }
        // Both routes land in the same closure.
        prop_assert_eq!(incremental.num_arcs(), batched.num_arcs());
        // And the reference batched entry point agrees as well.
        let module_batched =
            word_problem::entails_many(&arena, &equations, &goals, Algorithm::Worklist);
        prop_assert_eq!(module_batched, reference);
    }

    #[test]
    fn display_and_parse_round_trip_to_the_same_hash_consed_terms(
        lhs in arb_shape(),
        rhs in arb_shape(),
    ) {
        let (mut u, attrs) = universe();
        let mut arena = TermArena::new();
        let l = build(&lhs, &attrs, &mut arena);
        let r = build(&rhs, &attrs, &mut arena);
        // Term round trip: display inserts only the parentheses needed for
        // the output to re-parse, and hash-consing maps the re-parse onto
        // the *same* TermId.
        let l_text = arena.display(l, &u);
        let reparsed = parse_term(&l_text, &mut u, &mut arena).unwrap();
        prop_assert_eq!(reparsed, l, "{}", l_text);
        // Equation round trip.
        let eq = Equation::new(l, r);
        let eq_text = eq.display(&arena, &u);
        let reparsed_eq = parse_equation(&eq_text, &mut u, &mut arena).unwrap();
        prop_assert_eq!(reparsed_eq, eq, "{}", eq_text);
    }

    #[test]
    fn identities_hold_in_every_finite_model(lhs in arb_shape(), rhs in arb_shape()) {
        // If e = e' is recognized as an identity (Theorem 10 machinery), it
        // must hold in every finite lattice under every assignment.
        let (u, attrs) = universe();
        let mut arena = TermArena::new();
        let l = build(&lhs, &attrs, &mut arena);
        let r = build(&rhs, &attrs, &mut arena);
        if free_order::eq_id(&arena, l, r) {
            let eq = Equation::new(l, r);
            for lattice in [FiniteLattice::m3(), FiniteLattice::n5(), FiniteLattice::chain(4)] {
                prop_assert!(lattice.satisfies_identity(&arena, eq, &u).unwrap());
            }
        }
    }
}
