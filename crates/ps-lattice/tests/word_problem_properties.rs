//! Property-based tests for the uniform word problem for lattices.
//!
//! Three families of properties:
//!
//! 1. the two saturation strategies of algorithm ALG compute the same
//!    entailment relation;
//! 2. with `E = ∅`, ALG agrees with the free-lattice order `≤_id`
//!    (Lemma 8.2 / Lemma 9.2);
//! 3. **soundness against finite models**: if every equation of `E` holds in
//!    a concrete finite lattice under a concrete assignment, then every
//!    equation ALG derives from `E` also holds there (Theorem 8, the
//!    "only lattices that satisfy E matter" direction).

use proptest::prelude::*;
use std::collections::HashMap;

use ps_base::{Attribute, Universe};
use ps_lattice::{free_order, word_problem, Algorithm, Equation, FiniteLattice, TermArena, TermId};

/// A small fixed universe of four attributes shared by all generated terms.
fn universe() -> (Universe, Vec<Attribute>) {
    let mut u = Universe::new();
    let attrs = u.attrs(["A", "B", "C", "D"]);
    (u, attrs)
}

/// A strategy producing random term *shapes*: 0 = atom, 1 = meet, 2 = join,
/// encoded as a recursive tree.
#[derive(Debug, Clone)]
enum Shape {
    Atom(u8),
    Meet(Box<Shape>, Box<Shape>),
    Join(Box<Shape>, Box<Shape>),
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    let leaf = (0u8..4).prop_map(Shape::Atom);
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Shape::Meet(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| Shape::Join(Box::new(l), Box::new(r))),
        ]
    })
}

fn build(shape: &Shape, attrs: &[Attribute], arena: &mut TermArena) -> TermId {
    match shape {
        Shape::Atom(i) => arena.atom(attrs[*i as usize % attrs.len()]),
        Shape::Meet(l, r) => {
            let lt = build(l, attrs, arena);
            let rt = build(r, attrs, arena);
            arena.meet(lt, rt)
        }
        Shape::Join(l, r) => {
            let lt = build(l, attrs, arena);
            let rt = build(r, attrs, arena);
            arena.join(lt, rt)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn naive_and_worklist_agree(
        eq_shapes in prop::collection::vec((arb_shape(), arb_shape()), 0..4),
        goal in (arb_shape(), arb_shape()),
    ) {
        let (_, attrs) = universe();
        let mut arena = TermArena::new();
        let equations: Vec<Equation> = eq_shapes
            .iter()
            .map(|(l, r)| Equation::new(build(l, &attrs, &mut arena), build(r, &attrs, &mut arena)))
            .collect();
        let goal = Equation::new(build(&goal.0, &attrs, &mut arena), build(&goal.1, &attrs, &mut arena));
        let naive = word_problem::entails(&arena, &equations, goal, Algorithm::NaiveFixpoint);
        let fast = word_problem::entails(&arena, &equations, goal, Algorithm::Worklist);
        prop_assert_eq!(naive, fast);
    }

    #[test]
    fn empty_e_matches_the_free_order(lhs in arb_shape(), rhs in arb_shape()) {
        let (_, attrs) = universe();
        let mut arena = TermArena::new();
        let l = build(&lhs, &attrs, &mut arena);
        let r = build(&rhs, &attrs, &mut arena);
        for algo in [Algorithm::NaiveFixpoint, Algorithm::Worklist] {
            prop_assert_eq!(
                word_problem::entails_leq(&arena, &[], l, r, algo),
                free_order::leq_id(&arena, l, r)
            );
        }
    }

    #[test]
    fn derived_equations_hold_in_finite_models_satisfying_e(
        term_shapes in prop::collection::vec(arb_shape(), 2..6),
        goal_pair in (0usize..6, 0usize..6),
        assignment_seed in prop::collection::vec(0usize..5, 4),
        lattice_choice in 0usize..3,
    ) {
        let (u, attrs) = universe();
        let mut arena = TermArena::new();
        let lattice = match lattice_choice {
            0 => FiniteLattice::m3(),
            1 => FiniteLattice::n5(),
            _ => FiniteLattice::chain(5),
        };
        // A concrete assignment of lattice elements to the four attributes.
        let assignment: HashMap<Attribute, usize> = attrs
            .iter()
            .zip(assignment_seed.iter())
            .map(|(&a, &v)| (a, v % lattice.len()))
            .collect();
        // Build terms and evaluate them in the model.
        let terms: Vec<TermId> = term_shapes.iter().map(|s| build(s, &attrs, &mut arena)).collect();
        let values: Vec<usize> = terms
            .iter()
            .map(|&t| lattice.evaluate(&arena, t, &assignment, &u).unwrap())
            .collect();
        // E consists of every equation between generated terms that happens
        // to hold in the model, so the model satisfies E by construction.
        let mut equations = Vec::new();
        for i in 0..terms.len() {
            for j in (i + 1)..terms.len() {
                if values[i] == values[j] {
                    equations.push(Equation::new(terms[i], terms[j]));
                }
            }
        }
        // Pick a goal among the generated terms; if ALG derives it from E it
        // must hold in the model (soundness).
        let gi = goal_pair.0 % terms.len();
        let gj = goal_pair.1 % terms.len();
        let goal = Equation::new(terms[gi], terms[gj]);
        for algo in [Algorithm::NaiveFixpoint, Algorithm::Worklist] {
            if word_problem::entails(&arena, &equations, goal, algo) {
                prop_assert!(
                    lattice.satisfies(&arena, goal, &assignment, &u).unwrap(),
                    "ALG derived an equation that fails in a model satisfying E"
                );
            }
        }
    }

    #[test]
    fn identities_hold_in_every_finite_model(lhs in arb_shape(), rhs in arb_shape()) {
        // If e = e' is recognized as an identity (Theorem 10 machinery), it
        // must hold in every finite lattice under every assignment.
        let (u, attrs) = universe();
        let mut arena = TermArena::new();
        let l = build(&lhs, &attrs, &mut arena);
        let r = build(&rhs, &attrs, &mut arena);
        if free_order::eq_id(&arena, l, r) {
            let eq = Equation::new(l, r);
            for lattice in [FiniteLattice::m3(), FiniteLattice::n5(), FiniteLattice::chain(4)] {
                prop_assert!(lattice.satisfies_identity(&arena, eq, &u).unwrap());
            }
        }
    }
}
