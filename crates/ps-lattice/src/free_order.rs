//! The free-lattice order `≤_id` and PD-identity recognition (Theorem 10).
//!
//! Section 5.1 of the paper defines `≤_id` by five inference rules (the "ID
//! rules"); `p =_id q` iff `p ≤_id q` and `q ≤_id p`, and Lemma 8.2 states
//! that `p = q` holds in **all** lattices with constants (i.e. is a PD
//! *identity*) iff `p =_id q`.  Theorem 10 observes that `≤_id` can be
//! decided by a simple structural recursion — Whitman's condition — using
//! only logarithmic auxiliary space.
//!
//! Two implementations are provided:
//!
//! * [`leq_id`] — the structural recursion with memoization on pairs of
//!   hash-consed subterms (linear number of distinct pairs, so polynomial
//!   time; this is the one to use in practice);
//! * [`leq_id_constant_space`] — the same recursion *without* any memo
//!   table, mirroring the logspace argument of Theorem 10 (the only state is
//!   the recursion itself, which visits pairs of subterm positions).

use std::collections::HashMap;

use crate::{Equation, TermArena, TermId, TermNode};

/// Decides `p ≤_id q`: does `p ≤ q` hold in every lattice with constants
/// (under every interpretation of the attributes)?
///
/// Memoized on pairs of (hash-consed) subterms.
pub fn leq_id(arena: &TermArena, p: TermId, q: TermId) -> bool {
    let mut memo: HashMap<(TermId, TermId), bool> = HashMap::new();
    leq_id_memo(arena, p, q, &mut memo)
}

fn leq_id_memo(
    arena: &TermArena,
    p: TermId,
    q: TermId,
    memo: &mut HashMap<(TermId, TermId), bool>,
) -> bool {
    if let Some(&cached) = memo.get(&(p, q)) {
        return cached;
    }
    let result = decide(arena, p, q, &mut |a, pp, qq| leq_id_memo(a, pp, qq, memo));
    memo.insert((p, q), result);
    result
}

/// Decides `p ≤_id q` by the same recursion but with no memo table: the only
/// auxiliary state is the recursion stack, mirroring the logarithmic-space
/// procedure in the proof of Theorem 10.  Exponential time in the worst case
/// (shared subterms are revisited), so use it only on small terms — its role
/// is to witness the space/time trade-off in experiment E3.
pub fn leq_id_constant_space(arena: &TermArena, p: TermId, q: TermId) -> bool {
    decide(arena, p, q, &mut |a, pp, qq| {
        leq_id_constant_space(a, pp, qq)
    })
}

/// One step of the structural case analysis from the proof of Theorem 10.
/// `recurse` decides the subgoals.
fn decide(
    arena: &TermArena,
    p: TermId,
    q: TermId,
    recurse: &mut impl FnMut(&TermArena, TermId, TermId) -> bool,
) -> bool {
    use TermNode::{Atom, Join, Meet};
    match (arena.node(p), arena.node(q)) {
        // 1. A ≤_id A' iff A and A' are the same attribute.
        (Atom(a), Atom(b)) => a == b,
        // 7. p+q ≤_id e' iff p ≤_id e' and q ≤_id e'.
        (Join(p1, p2), _) => recurse(arena, p1, q) && recurse(arena, p2, q),
        // 2./5. e ≤_id p'*q' iff e ≤_id p' and e ≤_id q'.
        (_, Meet(q1, q2)) => recurse(arena, p, q1) && recurse(arena, p, q2),
        // 3. A ≤_id p'+q' iff A ≤_id p' or A ≤_id q'.
        (Atom(_), Join(q1, q2)) => recurse(arena, p, q1) || recurse(arena, p, q2),
        // 4. p*q ≤_id A' iff p ≤_id A' or q ≤_id A'.
        (Meet(p1, p2), Atom(_)) => recurse(arena, p1, q) || recurse(arena, p2, q),
        // 6. p*q ≤_id p'+q' iff p ≤_id p'+q' or q ≤_id p'+q'
        //    or p*q ≤_id p' or p*q ≤_id q'   (Whitman's condition).
        (Meet(p1, p2), Join(q1, q2)) => {
            recurse(arena, p1, q)
                || recurse(arena, p2, q)
                || recurse(arena, p, q1)
                || recurse(arena, p, q2)
        }
    }
}

/// Decides whether the equation `e = e′` is a **PD identity**: true in every
/// lattice with constants, hence in every partition interpretation
/// (Lemma 8.2a).
pub fn is_identity(arena: &TermArena, eq: Equation) -> bool {
    leq_id(arena, eq.lhs, eq.rhs) && leq_id(arena, eq.rhs, eq.lhs)
}

/// Equality in the free lattice: `p =_id q`.
pub fn eq_id(arena: &TermArena, p: TermId, q: TermId) -> bool {
    leq_id(arena, p, q) && leq_id(arena, q, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_term;
    use ps_base::Universe;

    struct Fixture {
        universe: Universe,
        arena: TermArena,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                universe: Universe::new(),
                arena: TermArena::new(),
            }
        }
        fn t(&mut self, s: &str) -> TermId {
            parse_term(s, &mut self.universe, &mut self.arena).unwrap()
        }
    }

    #[test]
    fn atoms_compare_by_identity() {
        let mut f = Fixture::new();
        let a = f.t("A");
        let b = f.t("B");
        assert!(leq_id(&f.arena, a, a));
        assert!(!leq_id(&f.arena, a, b));
    }

    #[test]
    fn meet_is_below_and_join_is_above() {
        let mut f = Fixture::new();
        let a = f.t("A");
        let b = f.t("B");
        let ab = f.t("A*B");
        let a_plus_b = f.t("A+B");
        assert!(leq_id(&f.arena, ab, a));
        assert!(leq_id(&f.arena, ab, b));
        assert!(leq_id(&f.arena, a, a_plus_b));
        assert!(leq_id(&f.arena, b, a_plus_b));
        assert!(leq_id(&f.arena, ab, a_plus_b));
        assert!(!leq_id(&f.arena, a_plus_b, ab));
        assert!(!leq_id(&f.arena, a, b));
    }

    #[test]
    fn lattice_axioms_are_identities() {
        let mut f = Fixture::new();
        let axioms = [
            ("(A*B)*C", "A*(B*C)"),
            ("(A+B)+C", "A+(B+C)"),
            ("A*B", "B*A"),
            ("A+B", "B+A"),
            ("A*A", "A"),
            ("A+A", "A"),
            ("A+(A*B)", "A"),
            ("A*(A+B)", "A"),
        ];
        for (lhs, rhs) in axioms {
            let l = f.t(lhs);
            let r = f.t(rhs);
            assert!(eq_id(&f.arena, l, r), "{lhs} = {rhs} should be an identity");
            assert!(is_identity(&f.arena, Equation::new(l, r)));
        }
    }

    #[test]
    fn distributive_and_modular_laws_are_not_identities() {
        let mut f = Fixture::new();
        // Distributivity fails in the free lattice (and in Figure 1's L(I)).
        let l = f.t("A*(B+C)");
        let r = f.t("(A*B)+(A*C)");
        assert!(leq_id(&f.arena, r, l), "one inequality always holds");
        assert!(
            !leq_id(&f.arena, l, r),
            "the other direction is not an identity"
        );
        assert!(!eq_id(&f.arena, l, r));
        // Modular law: A*(B+(A*C)) = (A*B)+(A*C) is not an identity either.
        let ml = f.t("A*(B+(A*C))");
        let mr = f.t("(A*B)+(A*C)");
        assert!(!eq_id(&f.arena, ml, mr));
        assert!(leq_id(&f.arena, mr, ml));
    }

    #[test]
    fn semidistributive_inequalities() {
        let mut f = Fixture::new();
        // (A*B)+(A*C) ≤ A*(B+C) is an identity.
        let lo = f.t("(A*B)+(A*C)");
        let hi = f.t("A*(B+C)");
        assert!(leq_id(&f.arena, lo, hi));
        // (A+B)*(A+C) ≥ A+(B*C) is an identity.
        let lo2 = f.t("A+(B*C)");
        let hi2 = f.t("(A+B)*(A+C)");
        assert!(leq_id(&f.arena, lo2, hi2));
        assert!(!leq_id(&f.arena, hi2, lo2));
    }

    #[test]
    fn constant_space_variant_agrees() {
        let mut f = Fixture::new();
        let pairs = [
            ("A*(B+C)", "(A*B)+(A*C)"),
            ("(A*B)+(A*C)", "A*(B+C)"),
            ("A+(B*(C+A))", "A+B"),
            ("A+B", "A+(B*(C+A))"),
            ("(A+B)*(C+D)", "(A*C)+(B*D)"),
            ("(A*C)+(B*D)", "(A+B)*(C+D)"),
        ];
        for (lhs, rhs) in pairs {
            let l = f.t(lhs);
            let r = f.t(rhs);
            assert_eq!(
                leq_id(&f.arena, l, r),
                leq_id_constant_space(&f.arena, l, r),
                "{lhs} ≤ {rhs}"
            );
        }
    }

    #[test]
    fn whitman_case_examples() {
        let mut f = Fixture::new();
        // A*B ≤ A+B holds because A*B ≤ A ≤ A+B.
        let l = f.t("A*B");
        let r = f.t("A+B");
        assert!(leq_id(&f.arena, l, r));
        // A*B ≤ C+D fails: no common attribute.
        let l2 = f.t("A*B");
        let r2 = f.t("C+D");
        assert!(!leq_id(&f.arena, l2, r2));
        // (A+B)*(A+C) ≤ A+(B*C) is exactly the failing direction of
        // distributivity for joins.
        let l3 = f.t("(A+B)*(A+C)");
        let r3 = f.t("A+(B*C)");
        assert!(!leq_id(&f.arena, l3, r3));
    }
}
