//! # ps-lattice
//!
//! Lattice-theoretic machinery behind *partition dependencies* (Cosmadakis,
//! Kanellakis, Spyratos, "Partition Semantics for Relations", Sections 2.2
//! and 5).
//!
//! The crate provides:
//!
//! * [`TermArena`] / [`TermId`] — hash-consed lattice terms `W(U)`: finite
//!   expressions built from attributes with the binary operators `*` (meet /
//!   partition product) and `+` (join / partition sum), plus a parser
//!   ([`parse_term`]) for the concrete syntax `A*(B+C)`.
//! * [`Equation`] — a pair of terms `e = e′`; a *partition dependency* is
//!   exactly such an equation.
//! * [`free_order`] — the relation `≤_id` of Section 5.1 (the order of the
//!   free lattice, decided by Whitman's condition).  Recognizing PD
//!   *identities* (Theorem 10) reduces to this check, which runs in
//!   logarithmic space.
//! * [`word_problem`] — the **uniform word problem for lattices**: given a
//!   finite set of equations `E` and a goal `e = e′`, decide whether every
//!   lattice with constants satisfying `E` also satisfies the goal.  This is
//!   exactly PD implication (Theorem 8).  The production entry point is the
//!   [`ImplicationEngine`]: built once per constraint set, queried for
//!   arbitrarily many goals, incrementally extendable, with rules firing as
//!   word-parallel bitset row operations.  Algorithm `ALG` of Section 5.2 is
//!   also implemented as two reference engines — the paper's literal `O(n⁴)`
//!   repeat-until-stable fixpoint and a worklist propagation
//!   ([`Algorithm`]) — which property tests pin the engine against.
//! * [`FiniteLattice`] — explicitly tabulated finite lattices with axiom
//!   checking, distributivity/modularity tests, generated sublattices,
//!   isomorphism testing and term evaluation; used to reproduce Figures 1
//!   and 2 and to cross-validate the symbolic algorithms by finite model
//!   checking.
//! * [`semigroup`] — the uniform word problem for idempotent commutative
//!   semigroups, which Section 5.3 identifies with FD implication.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
pub mod countermodel;
mod equation;
mod error;
mod finite;
pub mod free_order;
mod parser;
pub mod semigroup;
mod term;
pub mod word_problem;

pub use bitset::BitMatrix;
pub use countermodel::{finite_countermodel, Countermodel};
pub use equation::{leq_as_equations, Equation};
pub use error::LatticeError;
pub use finite::FiniteLattice;
pub use parser::{parse_equation, parse_term};
pub use term::{TermArena, TermId, TermNode};
pub use word_problem::{Algorithm, DerivedOrder, ImplicationEngine};

/// Convenient `Result` alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, LatticeError>;
