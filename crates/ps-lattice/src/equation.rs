//! Equations between lattice terms.
//!
//! A *partition dependency* (Definition 3) is precisely an equation
//! `e = e′` between partition expressions; the implication problem for PDs
//! is the uniform word problem for lattices over these equations
//! (Theorem 8).

use ps_base::Universe;

use crate::{TermArena, TermId};

/// An equation `lhs = rhs` between two terms of a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Equation {
    /// Left-hand side.
    pub lhs: TermId,
    /// Right-hand side.
    pub rhs: TermId,
}

impl Equation {
    /// Creates the equation `lhs = rhs`.
    pub fn new(lhs: TermId, rhs: TermId) -> Self {
        Equation { lhs, rhs }
    }

    /// The equation with the two sides swapped (equivalent as a constraint).
    pub fn flipped(self) -> Self {
        Equation {
            lhs: self.rhs,
            rhs: self.lhs,
        }
    }

    /// Whether the two sides are the same term (syntactically).
    pub fn is_trivial(self) -> bool {
        self.lhs == self.rhs
    }

    /// Renders the equation with attribute names, e.g. `A=A*B`.
    pub fn display(self, arena: &TermArena, universe: &Universe) -> String {
        format!(
            "{}={}",
            arena.display(self.lhs, universe),
            arena.display(self.rhs, universe)
        )
    }
}

/// Builds the pair of equations expressing `lhs ≤ rhs` in the two equivalent
/// ways of Section 3.2: `lhs = lhs * rhs` and `rhs = rhs + lhs`.
///
/// Either one alone already expresses the inequality; both are returned so
/// callers can pick the form they need (or assert their equivalence in
/// tests).
pub fn leq_as_equations(arena: &mut TermArena, lhs: TermId, rhs: TermId) -> (Equation, Equation) {
    let meet = arena.meet(lhs, rhs);
    let join = arena.join(rhs, lhs);
    (Equation::new(lhs, meet), Equation::new(rhs, join))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flipped_and_trivial() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let a = arena.atom(u.attr("A"));
        let b = arena.atom(u.attr("B"));
        let eq = Equation::new(a, b);
        assert_eq!(eq.flipped(), Equation::new(b, a));
        assert!(!eq.is_trivial());
        assert!(Equation::new(a, a).is_trivial());
    }

    #[test]
    fn display_uses_names() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let a = arena.atom(u.attr("A"));
        let b = arena.atom(u.attr("B"));
        let ab = arena.meet(a, b);
        let eq = Equation::new(a, ab);
        assert_eq!(eq.display(&arena, &u), "A=A*B");
    }

    #[test]
    fn leq_as_equations_builds_both_forms() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let a = arena.atom(u.attr("A"));
        let b = arena.atom(u.attr("B"));
        let (meet_form, join_form) = leq_as_equations(&mut arena, a, b);
        assert_eq!(meet_form.display(&arena, &u), "A=A*B");
        assert_eq!(join_form.display(&arena, &u), "B=B+A");
    }
}
