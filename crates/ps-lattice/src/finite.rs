//! Explicitly tabulated finite lattices.
//!
//! The lattice `L(I)` of Theorem 1 — the closure of an interpretation's
//! atomic partitions under product and sum — is finite whenever the
//! populations are, and several of the paper's arguments inspect such
//! lattices directly: Figure 1 exhibits a non-distributive `L(I)`, and the
//! proof of Theorem 5 (MVDs are not expressible by PDs) rests on two
//! canonical interpretations whose lattices are *isomorphic*.  This module
//! provides the finite-lattice value type used for those reproductions and
//! for finite model checking of the symbolic algorithms.

use std::collections::HashMap;

use ps_base::{Attribute, Universe};

use crate::{Equation, LatticeError, Result, TermArena, TermId, TermNode};

/// A finite lattice on elements `0..len`, with tabulated order, meet and
/// join.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteLattice {
    n: usize,
    leq: Vec<bool>,
    meet: Vec<u32>,
    join: Vec<u32>,
}

impl FiniteLattice {
    /// Builds a lattice from an order relation given as a predicate on
    /// element indices.
    ///
    /// Verifies that the relation is a partial order and that every pair of
    /// elements has a greatest lower bound and a least upper bound; returns
    /// [`LatticeError::NotALattice`] otherwise.
    pub fn from_leq(n: usize, leq: impl Fn(usize, usize) -> bool) -> Result<Self> {
        let mut table = vec![false; n * n];
        for i in 0..n {
            for j in 0..n {
                table[i * n + j] = leq(i, j);
            }
        }
        Self::from_leq_table(n, table)
    }

    /// Builds a lattice from a row-major `n × n` boolean order table.
    pub fn from_leq_table(n: usize, leq: Vec<bool>) -> Result<Self> {
        assert_eq!(leq.len(), n * n, "order table must be n*n");
        let le = |i: usize, j: usize| leq[i * n + j];
        // Partial-order checks.
        for i in 0..n {
            if !le(i, i) {
                return Err(LatticeError::NotALattice(format!(
                    "order is not reflexive at element {i}"
                )));
            }
            for j in 0..n {
                if i != j && le(i, j) && le(j, i) {
                    return Err(LatticeError::NotALattice(format!(
                        "order is not antisymmetric on {i}, {j}"
                    )));
                }
                for k in 0..n {
                    if le(i, j) && le(j, k) && !le(i, k) {
                        return Err(LatticeError::NotALattice(format!(
                            "order is not transitive on {i}, {j}, {k}"
                        )));
                    }
                }
            }
        }
        // Meets and joins.
        let mut meet = vec![0u32; n * n];
        let mut join = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                let lower: Vec<usize> = (0..n).filter(|&k| le(k, i) && le(k, j)).collect();
                let glb = lower
                    .iter()
                    .copied()
                    .find(|&g| lower.iter().all(|&k| le(k, g)));
                let upper: Vec<usize> = (0..n).filter(|&k| le(i, k) && le(j, k)).collect();
                let lub = upper
                    .iter()
                    .copied()
                    .find(|&g| upper.iter().all(|&k| le(g, k)));
                match (glb, lub) {
                    (Some(m), Some(s)) => {
                        meet[i * n + j] = m as u32;
                        join[i * n + j] = s as u32;
                    }
                    (None, _) => {
                        return Err(LatticeError::NotALattice(format!(
                            "elements {i} and {j} have no meet"
                        )))
                    }
                    (_, None) => {
                        return Err(LatticeError::NotALattice(format!(
                            "elements {i} and {j} have no join"
                        )))
                    }
                }
            }
        }
        Ok(FiniteLattice { n, leq, meet, join })
    }

    /// The `n`-element chain `0 < 1 < … < n-1`.
    pub fn chain(n: usize) -> Self {
        Self::from_leq(n, |i, j| i <= j).expect("a chain is a lattice")
    }

    /// The diamond `M₃`: bottom, three incomparable atoms, top.  The smallest
    /// non-distributive (but modular) lattice.
    pub fn m3() -> Self {
        // 0 = bottom, 1,2,3 = atoms, 4 = top.
        Self::from_leq(5, |i, j| i == j || i == 0 || j == 4).expect("M3 is a lattice")
    }

    /// The pentagon `N₅`: the smallest non-modular lattice.
    pub fn n5() -> Self {
        // 0 = bottom, 4 = top; chain 0 < 1 < 2 < 4 and 0 < 3 < 4.
        Self::from_leq(5, |i, j| i == j || i == 0 || j == 4 || (i == 1 && j == 2))
            .expect("N5 is a lattice")
    }

    /// The Boolean lattice of subsets of a `k`-element set (2^k elements,
    /// ordered by inclusion of bit masks).
    pub fn boolean(k: u32) -> Self {
        let n = 1usize << k;
        Self::from_leq(n, |i, j| i & j == i).expect("the subset order is a lattice")
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the lattice has no elements.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The order relation.
    pub fn leq(&self, i: usize, j: usize) -> bool {
        self.leq[i * self.n + j]
    }

    /// The meet (greatest lower bound) of `i` and `j`.
    pub fn meet(&self, i: usize, j: usize) -> usize {
        self.meet[i * self.n + j] as usize
    }

    /// The join (least upper bound) of `i` and `j`.
    pub fn join(&self, i: usize, j: usize) -> usize {
        self.join[i * self.n + j] as usize
    }

    /// The greatest element.
    pub fn top(&self) -> usize {
        (0..self.n)
            .find(|&t| (0..self.n).all(|i| self.leq(i, t)))
            .expect("a non-empty lattice has a top")
    }

    /// The least element.
    pub fn bottom(&self) -> usize {
        (0..self.n)
            .find(|&b| (0..self.n).all(|i| self.leq(b, i)))
            .expect("a non-empty lattice has a bottom")
    }

    /// The covering pairs `(i, j)` (`i < j` with nothing strictly between):
    /// the edges of the Hasse diagram.
    pub fn covers(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j || !self.leq(i, j) {
                    continue;
                }
                let has_middle =
                    (0..self.n).any(|k| k != i && k != j && self.leq(i, k) && self.leq(k, j));
                if !has_middle {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Verifies the lattice axioms LA (associativity, commutativity,
    /// idempotence, absorption) directly on the tables.  Always succeeds for
    /// lattices built by [`FiniteLattice::from_leq`]; useful as a sanity
    /// check in tests and on hand-built tables.
    pub fn check_axioms(&self) -> std::result::Result<(), String> {
        let n = self.n;
        for x in 0..n {
            for y in 0..n {
                if self.meet(x, y) != self.meet(y, x) {
                    return Err(format!("meet not commutative on {x},{y}"));
                }
                if self.join(x, y) != self.join(y, x) {
                    return Err(format!("join not commutative on {x},{y}"));
                }
                if self.join(x, self.meet(x, y)) != x {
                    return Err(format!("absorption x+(x*y) fails on {x},{y}"));
                }
                if self.meet(x, self.join(x, y)) != x {
                    return Err(format!("absorption x*(x+y) fails on {x},{y}"));
                }
                for z in 0..n {
                    if self.meet(self.meet(x, y), z) != self.meet(x, self.meet(y, z)) {
                        return Err(format!("meet not associative on {x},{y},{z}"));
                    }
                    if self.join(self.join(x, y), z) != self.join(x, self.join(y, z)) {
                        return Err(format!("join not associative on {x},{y},{z}"));
                    }
                }
            }
            if self.meet(x, x) != x || self.join(x, x) != x {
                return Err(format!("idempotence fails on {x}"));
            }
        }
        Ok(())
    }

    /// Whether the distributive law `x*(y+z) = (x*y)+(x*z)` holds for all
    /// elements.
    pub fn is_distributive(&self) -> bool {
        let n = self.n;
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    if self.meet(x, self.join(y, z)) != self.join(self.meet(x, y), self.meet(x, z))
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Whether the modular law (`x ≤ z` implies `x+(y*z) = (x+y)*z`) holds.
    pub fn is_modular(&self) -> bool {
        let n = self.n;
        for x in 0..n {
            for y in 0..n {
                for z in 0..n {
                    if self.leq(x, z)
                        && self.join(x, self.meet(y, z)) != self.meet(self.join(x, y), z)
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The sublattice generated by `generators`: the smallest subset
    /// containing them and closed under meet and join.  Returned as a sorted
    /// list of element indices.
    pub fn sublattice_generated_by(&self, generators: &[usize]) -> Vec<usize> {
        let mut in_set = vec![false; self.n];
        let mut elements: Vec<usize> = Vec::new();
        for &g in generators {
            if !in_set[g] {
                in_set[g] = true;
                elements.push(g);
            }
        }
        loop {
            let mut fresh = Vec::new();
            for (idx, &x) in elements.iter().enumerate() {
                for &y in &elements[idx..] {
                    for candidate in [self.meet(x, y), self.join(x, y)] {
                        if !in_set[candidate] {
                            in_set[candidate] = true;
                            fresh.push(candidate);
                        }
                    }
                }
            }
            if fresh.is_empty() {
                break;
            }
            elements.extend(fresh);
        }
        elements.sort_unstable();
        elements
    }

    /// Evaluates a term under an assignment of lattice elements to
    /// attributes.
    pub fn evaluate(
        &self,
        arena: &TermArena,
        term: TermId,
        assignment: &HashMap<Attribute, usize>,
        universe: &Universe,
    ) -> Result<usize> {
        match arena.node(term) {
            TermNode::Atom(a) => assignment.get(&a).copied().ok_or_else(|| {
                LatticeError::UnassignedAttribute(
                    universe.name(a).unwrap_or("<unknown>").to_owned(),
                )
            }),
            TermNode::Meet(l, r) => Ok(self.meet(
                self.evaluate(arena, l, assignment, universe)?,
                self.evaluate(arena, r, assignment, universe)?,
            )),
            TermNode::Join(l, r) => Ok(self.join(
                self.evaluate(arena, l, assignment, universe)?,
                self.evaluate(arena, r, assignment, universe)?,
            )),
        }
    }

    /// Whether the lattice satisfies `eq` under the given assignment of
    /// elements to attributes (this is satisfaction "as a lattice with
    /// constants", Section 2.2).
    pub fn satisfies(
        &self,
        arena: &TermArena,
        eq: Equation,
        assignment: &HashMap<Attribute, usize>,
        universe: &Universe,
    ) -> Result<bool> {
        Ok(self.evaluate(arena, eq.lhs, assignment, universe)?
            == self.evaluate(arena, eq.rhs, assignment, universe)?)
    }

    /// Whether `eq` holds under **every** assignment of lattice elements to
    /// the attributes occurring in it (identity checking by finite model
    /// inspection; exponential in the number of attributes).
    pub fn satisfies_identity(
        &self,
        arena: &TermArena,
        eq: Equation,
        universe: &Universe,
    ) -> Result<bool> {
        let attrs: Vec<Attribute> = arena
            .atoms(eq.lhs)
            .union(&arena.atoms(eq.rhs))
            .iter()
            .collect();
        let mut assignment: HashMap<Attribute, usize> = HashMap::new();
        self.check_all_assignments(arena, eq, universe, &attrs, 0, &mut assignment)
    }

    fn check_all_assignments(
        &self,
        arena: &TermArena,
        eq: Equation,
        universe: &Universe,
        attrs: &[Attribute],
        next: usize,
        assignment: &mut HashMap<Attribute, usize>,
    ) -> Result<bool> {
        if next == attrs.len() {
            return self.satisfies(arena, eq, assignment, universe);
        }
        for value in 0..self.n {
            assignment.insert(attrs[next], value);
            if !self.check_all_assignments(arena, eq, universe, attrs, next + 1, assignment)? {
                return Ok(false);
            }
        }
        assignment.remove(&attrs[next]);
        Ok(true)
    }

    /// Whether there is an order- (hence meet- and join-) preserving
    /// bijection between the two lattices.  Backtracking search with a
    /// signature-based pruning; intended for the small lattices arising from
    /// canonical interpretations (Figure 2 / Theorem 5).
    pub fn is_isomorphic_to(&self, other: &FiniteLattice) -> bool {
        if self.n != other.n {
            return false;
        }
        let sig = |lat: &FiniteLattice, x: usize| -> (usize, usize) {
            (
                (0..lat.n).filter(|&y| lat.leq(y, x)).count(),
                (0..lat.n).filter(|&y| lat.leq(x, y)).count(),
            )
        };
        let self_sigs: Vec<_> = (0..self.n).map(|x| sig(self, x)).collect();
        let other_sigs: Vec<_> = (0..other.n).map(|x| sig(other, x)).collect();
        {
            let mut a = self_sigs.clone();
            let mut b = other_sigs.clone();
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                return false;
            }
        }
        let mut mapping: Vec<Option<usize>> = vec![None; self.n];
        let mut used = vec![false; self.n];
        self.extend_isomorphism(other, &self_sigs, &other_sigs, &mut mapping, &mut used, 0)
    }

    fn extend_isomorphism(
        &self,
        other: &FiniteLattice,
        self_sigs: &[(usize, usize)],
        other_sigs: &[(usize, usize)],
        mapping: &mut Vec<Option<usize>>,
        used: &mut Vec<bool>,
        next: usize,
    ) -> bool {
        if next == self.n {
            return true;
        }
        for candidate in 0..self.n {
            if used[candidate] || self_sigs[next] != other_sigs[candidate] {
                continue;
            }
            // Check order compatibility with everything already mapped.
            let compatible = (0..next).all(|prev| {
                let img = mapping[prev].expect("mapped");
                self.leq(prev, next) == other.leq(img, candidate)
                    && self.leq(next, prev) == other.leq(candidate, img)
            });
            if !compatible {
                continue;
            }
            mapping[next] = Some(candidate);
            used[candidate] = true;
            if self.extend_isomorphism(other, self_sigs, other_sigs, mapping, used, next + 1) {
                return true;
            }
            mapping[next] = None;
            used[candidate] = false;
        }
        false
    }

    /// Verifies that `map` (from this lattice's elements to `other`'s) is a
    /// lattice homomorphism: it preserves meets and joins.
    pub fn is_homomorphism(&self, other: &FiniteLattice, map: &[usize]) -> bool {
        if map.len() != self.n || map.iter().any(|&m| m >= other.n) {
            return false;
        }
        for x in 0..self.n {
            for y in 0..self.n {
                if map[self.meet(x, y)] != other.meet(map[x], map[y])
                    || map[self.join(x, y)] != other.join(map[x], map[y])
                {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_equation;

    #[test]
    fn chain_is_distributive_and_modular() {
        let c = FiniteLattice::chain(4);
        assert!(c.check_axioms().is_ok());
        assert!(c.is_distributive());
        assert!(c.is_modular());
        assert_eq!(c.top(), 3);
        assert_eq!(c.bottom(), 0);
        assert_eq!(c.meet(1, 3), 1);
        assert_eq!(c.join(1, 3), 3);
        assert_eq!(c.covers(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn m3_is_modular_but_not_distributive() {
        let m3 = FiniteLattice::m3();
        assert!(m3.check_axioms().is_ok());
        assert!(!m3.is_distributive());
        assert!(m3.is_modular());
    }

    #[test]
    fn n5_is_not_modular() {
        let n5 = FiniteLattice::n5();
        assert!(n5.check_axioms().is_ok());
        assert!(!n5.is_modular());
        assert!(!n5.is_distributive());
    }

    #[test]
    fn boolean_lattice_is_distributive() {
        let b3 = FiniteLattice::boolean(3);
        assert_eq!(b3.len(), 8);
        assert!(b3.is_distributive());
        assert_eq!(b3.meet(0b101, 0b110), 0b100);
        assert_eq!(b3.join(0b101, 0b110), 0b111);
    }

    #[test]
    fn from_leq_rejects_non_lattices() {
        // Two incomparable maximal elements: no join.
        let err = FiniteLattice::from_leq(3, |i, j| i == j || i == 0).unwrap_err();
        assert!(matches!(err, LatticeError::NotALattice(_)));
        // Not antisymmetric.
        let err = FiniteLattice::from_leq(2, |_, _| true).unwrap_err();
        assert!(matches!(err, LatticeError::NotALattice(_)));
    }

    #[test]
    fn sublattice_generation() {
        let b3 = FiniteLattice::boolean(3);
        // Two atoms generate {bottom, a, b, a∨b}.
        let sub = b3.sublattice_generated_by(&[0b001, 0b010]);
        assert_eq!(sub, vec![0b000, 0b001, 0b010, 0b011]);
        // Generators are deduplicated.
        let sub2 = b3.sublattice_generated_by(&[0b001, 0b001]);
        assert_eq!(sub2, vec![0b001]);
    }

    #[test]
    fn evaluation_and_satisfaction() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let eq = parse_equation("A*(B+C)=(A*B)+(A*C)", &mut u, &mut arena).unwrap();
        let m3 = FiniteLattice::m3();
        // Distributivity fails on M3 for the three atoms…
        let a = u.lookup("A").unwrap();
        let b = u.lookup("B").unwrap();
        let c = u.lookup("C").unwrap();
        let mut assignment = HashMap::new();
        assignment.insert(a, 1);
        assignment.insert(b, 2);
        assignment.insert(c, 3);
        assert!(!m3.satisfies(&arena, eq, &assignment, &u).unwrap());
        assert!(!m3.satisfies_identity(&arena, eq, &u).unwrap());
        // …but holds on a chain.
        let chain = FiniteLattice::chain(3);
        assert!(chain.satisfies_identity(&arena, eq, &u).unwrap());
        // Unassigned attributes are reported.
        assignment.remove(&c);
        assert!(matches!(
            m3.satisfies(&arena, eq, &assignment, &u),
            Err(LatticeError::UnassignedAttribute(_))
        ));
    }

    #[test]
    fn absorption_is_an_identity_in_every_finite_lattice() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let eq = parse_equation("A+(A*B)=A", &mut u, &mut arena).unwrap();
        for lattice in [
            FiniteLattice::chain(4),
            FiniteLattice::m3(),
            FiniteLattice::n5(),
            FiniteLattice::boolean(2),
        ] {
            assert!(lattice.satisfies_identity(&arena, eq, &u).unwrap());
        }
    }

    #[test]
    fn isomorphism_detects_equal_and_different_shapes() {
        assert!(FiniteLattice::m3().is_isomorphic_to(&FiniteLattice::m3()));
        assert!(!FiniteLattice::m3().is_isomorphic_to(&FiniteLattice::n5()));
        assert!(!FiniteLattice::chain(3).is_isomorphic_to(&FiniteLattice::chain(4)));
        assert!(FiniteLattice::boolean(2)
            .is_isomorphic_to(&FiniteLattice::from_leq(4, |i, j| i & j == i).unwrap()));
        // The 4-element chain is not isomorphic to the 4-element Boolean
        // lattice (diamond) even though the sizes match.
        assert!(!FiniteLattice::chain(4).is_isomorphic_to(&FiniteLattice::boolean(2)));
    }

    #[test]
    fn homomorphism_check() {
        let chain2 = FiniteLattice::chain(2);
        let chain3 = FiniteLattice::chain(3);
        // Collapsing map 0,1,2 -> 0,0,1 is a homomorphism chain3 -> chain2.
        assert!(chain3.is_homomorphism(&chain2, &[0, 0, 1]));
        // Map that breaks joins is rejected.
        let m3 = FiniteLattice::m3();
        assert!(!m3.is_homomorphism(&chain2, &[0, 0, 1, 1, 0]));
        // Wrong arity is rejected.
        assert!(!m3.is_homomorphism(&chain2, &[0, 0]));
    }
}
