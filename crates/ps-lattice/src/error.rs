//! Errors for lattice construction, parsing and solving.

use std::fmt;

/// Errors raised by the lattice machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// The parser encountered malformed input.
    Parse {
        /// Human-readable description of the problem.
        message: String,
        /// Byte offset into the input at which the problem was detected
        /// (the start of [`LatticeError::Parse::span`], kept as its own
        /// field for backwards compatibility).
        position: usize,
        /// Byte-offset range `start..end` of the offending token.  For an
        /// unexpected end of input the span is empty (`start == end ==
        /// input.len()`).
        span: (usize, usize),
        /// The set of tokens that would have been accepted at `position`,
        /// rendered for diagnostics (e.g. `"`)`"` or `"an attribute name"`).
        expected: Vec<&'static str>,
    },
    /// A relation passed to [`crate::FiniteLattice::from_leq`] is not a
    /// partial order, or lacks meets/joins.
    NotALattice(String),
    /// A term mentions an attribute with no value in the given assignment.
    UnassignedAttribute(String),
    /// A term identifier does not belong to the arena it was used with.
    ForeignTerm(u32),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::Parse {
                message,
                span,
                expected,
                ..
            } => {
                write!(f, "parse error at bytes {}..{}: {message}", span.0, span.1)?;
                if !expected.is_empty() {
                    write!(f, " (expected {})", expected.join(" or "))?;
                }
                Ok(())
            }
            LatticeError::NotALattice(why) => write!(f, "not a lattice: {why}"),
            LatticeError::UnassignedAttribute(name) => {
                write!(f, "attribute `{name}` has no value in the assignment")
            }
            LatticeError::ForeignTerm(id) => {
                write!(f, "term id {id} does not belong to this arena")
            }
        }
    }
}

impl std::error::Error for LatticeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let p = LatticeError::Parse {
            message: "unexpected `)`".into(),
            position: 3,
            span: (3, 4),
            expected: vec!["`*`", "`+`"],
        };
        assert!(p.to_string().contains("bytes 3..4"));
        assert!(p.to_string().contains("expected `*` or `+`"));
        assert!(LatticeError::NotALattice("no meet of 1,2".into())
            .to_string()
            .contains("no meet"));
        assert!(LatticeError::UnassignedAttribute("A".into())
            .to_string()
            .contains("`A`"));
        assert!(LatticeError::ForeignTerm(9).to_string().contains("9"));
    }
}
