//! A parser for partition expressions and partition dependencies.
//!
//! Concrete syntax (attributes are identifiers; `*` binds tighter than `+`;
//! both operators are left-associative):
//!
//! ```text
//! expr     := sum
//! sum      := product ('+' product)*
//! product  := factor ('*' factor)*
//! factor   := IDENT | '(' expr ')'
//! equation := expr '=' expr
//! ```
//!
//! ```
//! use ps_base::Universe;
//! use ps_lattice::{parse_equation, TermArena};
//! let mut universe = Universe::new();
//! let mut arena = TermArena::new();
//! let eq = parse_equation("C = A + B", &mut universe, &mut arena).unwrap();
//! assert_eq!(eq.display(&arena, &universe), "C=A+B");
//! ```

use ps_base::Universe;

use crate::{Equation, LatticeError, Result, TermArena, TermId};

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    universe: &'a mut Universe,
    arena: &'a mut TermArena,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, universe: &'a mut Universe, arena: &'a mut TermArena) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            universe,
            arena,
        }
    }

    fn error(&self, message: impl Into<String>) -> LatticeError {
        LatticeError::Parse {
            message: message.into(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn expect(&mut self, expected: u8) -> Result<()> {
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            Some(c) => Err(self.error(format!(
                "expected `{}`, found `{}`",
                expected as char, c as char
            ))),
            None => Err(self.error(format!(
                "expected `{}`, found end of input",
                expected as char
            ))),
        }
    }

    fn parse_ident(&mut self) -> Result<TermId> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected an attribute name"));
        }
        let name = &self.input[start..self.pos];
        let attr = self.universe.attr(name);
        Ok(self.arena.atom(attr))
    }

    fn parse_factor(&mut self) -> Result<TermId> {
        match self.peek() {
            Some(b'(') => {
                self.bump();
                let inner = self.parse_sum()?;
                self.expect(b')')?;
                Ok(inner)
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => self.parse_ident(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_product(&mut self) -> Result<TermId> {
        let mut acc = self.parse_factor()?;
        while self.peek() == Some(b'*') {
            self.bump();
            let rhs = self.parse_factor()?;
            acc = self.arena.meet(acc, rhs);
        }
        Ok(acc)
    }

    fn parse_sum(&mut self) -> Result<TermId> {
        let mut acc = self.parse_product()?;
        while self.peek() == Some(b'+') {
            self.bump();
            let rhs = self.parse_product()?;
            acc = self.arena.join(acc, rhs);
        }
        Ok(acc)
    }

    fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }
}

/// Parses a single partition expression such as `A*(B+C)`.
///
/// New attribute names are interned into `universe` on the fly.
pub fn parse_term(input: &str, universe: &mut Universe, arena: &mut TermArena) -> Result<TermId> {
    let mut parser = Parser::new(input, universe, arena);
    let term = parser.parse_sum()?;
    if !parser.at_end() {
        return Err(parser.error("trailing input after expression"));
    }
    Ok(term)
}

/// Parses a partition dependency such as `C = A + B`.
pub fn parse_equation(
    input: &str,
    universe: &mut Universe,
    arena: &mut TermArena,
) -> Result<Equation> {
    let mut parser = Parser::new(input, universe, arena);
    let lhs = parser.parse_sum()?;
    parser.expect(b'=')?;
    let rhs = parser.parse_sum()?;
    if !parser.at_end() {
        return Err(parser.error("trailing input after equation"));
    }
    Ok(Equation::new(lhs, rhs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(s: &str) -> String {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let t = parse_term(s, &mut u, &mut arena).unwrap();
        arena.display(t, &u)
    }

    #[test]
    fn parses_atoms_and_operators() {
        assert_eq!(parse_ok("A"), "A");
        assert_eq!(parse_ok("A*B"), "A*B");
        assert_eq!(parse_ok("A+B"), "A+B");
        assert_eq!(parse_ok("A * B * C"), "A*B*C");
    }

    #[test]
    fn star_binds_tighter_than_plus() {
        assert_eq!(parse_ok("A+B*C"), "A+B*C");
        assert_eq!(parse_ok("(A+B)*C"), "(A+B)*C");
        assert_eq!(parse_ok("A*(B+C)"), "A*(B+C)");
    }

    #[test]
    fn multi_character_attribute_names() {
        assert_eq!(parse_ok("Emp*Mgr"), "Emp*Mgr");
        assert_eq!(parse_ok("A1+A_2"), "A1+A_2");
    }

    #[test]
    fn parse_equation_round_trips() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let eq = parse_equation("A = A*B", &mut u, &mut arena).unwrap();
        assert_eq!(eq.display(&arena, &u), "A=A*B");
        // The same attribute name maps to the same atom.
        let eq2 = parse_equation("B = B + A", &mut u, &mut arena).unwrap();
        assert_eq!(eq2.display(&arena, &u), "B=B+A");
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn reports_errors_with_positions() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        for bad in [
            "", "A+", "*A", "(A+B", "A)B", "A B", "A=+B", "A==B", "A=B=C",
        ] {
            let term_err = parse_term(bad, &mut u, &mut arena).is_err();
            let eq_err = parse_equation(bad, &mut u, &mut arena).is_err();
            assert!(
                term_err || eq_err,
                "input {bad:?} should fail at least one parser"
            );
        }
        let err = parse_term("A&B", &mut u, &mut arena).unwrap_err();
        assert!(matches!(err, LatticeError::Parse { .. }));
    }

    #[test]
    fn shared_subterms_are_hash_consed() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let t1 = parse_term("A*B", &mut u, &mut arena).unwrap();
        let t2 = parse_term("A*B", &mut u, &mut arena).unwrap();
        assert_eq!(t1, t2);
    }
}
