//! A parser for partition expressions and partition dependencies.
//!
//! Concrete syntax (attributes are identifiers; `*` binds tighter than `+`;
//! both operators are left-associative):
//!
//! ```text
//! expr     := sum
//! sum      := product ('+' product)*
//! product  := factor ('*' factor)*
//! factor   := IDENT | '(' expr ')'
//! equation := expr '=' expr
//! ```
//!
//! ```
//! use ps_base::Universe;
//! use ps_lattice::{parse_equation, TermArena};
//! let mut universe = Universe::new();
//! let mut arena = TermArena::new();
//! let eq = parse_equation("C = A + B", &mut universe, &mut arena).unwrap();
//! assert_eq!(eq.display(&arena, &universe), "C=A+B");
//! ```

use ps_base::Universe;

use crate::{Equation, LatticeError, Result, TermArena, TermId};

/// Tokens accepted where a factor may start.
const FACTOR_START: &[&str] = &["an attribute name", "`(`"];

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    universe: &'a mut Universe,
    arena: &'a mut TermArena,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str, universe: &'a mut Universe, arena: &'a mut TermArena) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            universe,
            arena,
        }
    }

    /// Builds a parse error whose span covers `len` bytes starting at the
    /// current position (`len == 0` marks an empty span at end of input),
    /// carrying the set of tokens that would have been accepted here.  The
    /// span end is rounded up to the next character boundary so consumers
    /// can always slice the input with it.
    fn error(
        &self,
        len: usize,
        message: impl Into<String>,
        expected: &[&'static str],
    ) -> LatticeError {
        let mut end = (self.pos + len).min(self.bytes.len());
        while !self.input.is_char_boundary(end) {
            end += 1;
        }
        LatticeError::Parse {
            message: message.into(),
            position: self.pos,
            span: (self.pos, end),
            expected: expected.to_vec(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    /// The full character at the current position (whitespace skipped) —
    /// used for diagnostics, where a raw byte of a multi-byte character
    /// would render as mojibake.
    fn peek_char(&mut self) -> Option<char> {
        self.skip_ws();
        self.input[self.pos..].chars().next()
    }

    // Named `expect_byte` (not `expect`) so call sites cannot be confused
    // with the panicking `Option::expect` — this one returns a parse error.
    fn expect_byte(&mut self, wanted: u8, expected: &[&'static str]) -> Result<()> {
        match self.peek_char() {
            Some(c) if c == wanted as char => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(self.error(
                c.len_utf8(),
                format!("expected `{}`, found `{c}`", wanted as char),
                expected,
            )),
            None => Err(self.error(
                0,
                format!("expected `{}`, found end of input", wanted as char),
                expected,
            )),
        }
    }

    fn parse_ident(&mut self) -> Result<TermId> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            let len = self.input[self.pos..]
                .chars()
                .next()
                .map_or(0, char::len_utf8);
            return Err(self.error(len, "expected an attribute name", FACTOR_START));
        }
        let name = &self.input[start..self.pos];
        let attr = self.universe.attr(name);
        Ok(self.arena.atom(attr))
    }

    fn parse_factor(&mut self) -> Result<TermId> {
        match self.peek() {
            Some(b'(') => {
                self.bump();
                let inner = self.parse_sum()?;
                self.expect_byte(b')', &["`*`", "`+`", "`)`"])?;
                Ok(inner)
            }
            Some(c) if c.is_ascii_alphanumeric() || c == b'_' => self.parse_ident(),
            Some(_) => {
                let c = self.peek_char().expect("peek saw a byte");
                Err(self.error(
                    c.len_utf8(),
                    format!("unexpected character `{c}`"),
                    FACTOR_START,
                ))
            }
            None => Err(self.error(0, "unexpected end of input", FACTOR_START)),
        }
    }

    fn parse_product(&mut self) -> Result<TermId> {
        let mut acc = self.parse_factor()?;
        while self.peek() == Some(b'*') {
            self.bump();
            let rhs = self.parse_factor()?;
            acc = self.arena.meet(acc, rhs);
        }
        Ok(acc)
    }

    fn parse_sum(&mut self) -> Result<TermId> {
        let mut acc = self.parse_product()?;
        while self.peek() == Some(b'+') {
            self.bump();
            let rhs = self.parse_product()?;
            acc = self.arena.join(acc, rhs);
        }
        Ok(acc)
    }

    fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }
}

/// Parses a single partition expression such as `A*(B+C)`.
///
/// New attribute names are interned into `universe` on the fly.
pub fn parse_term(input: &str, universe: &mut Universe, arena: &mut TermArena) -> Result<TermId> {
    let mut parser = Parser::new(input, universe, arena);
    let term = parser.parse_sum()?;
    if !parser.at_end() {
        return Err(parser.error(
            1,
            "trailing input after expression",
            &["`*`", "`+`", "end of input"],
        ));
    }
    Ok(term)
}

/// Parses a partition dependency such as `C = A + B`.
pub fn parse_equation(
    input: &str,
    universe: &mut Universe,
    arena: &mut TermArena,
) -> Result<Equation> {
    let mut parser = Parser::new(input, universe, arena);
    let lhs = parser.parse_sum()?;
    parser.expect_byte(b'=', &["`*`", "`+`", "`=`"])?;
    let rhs = parser.parse_sum()?;
    if !parser.at_end() {
        return Err(parser.error(
            1,
            "trailing input after equation",
            &["`*`", "`+`", "end of input"],
        ));
    }
    Ok(Equation::new(lhs, rhs))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(s: &str) -> String {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let t = parse_term(s, &mut u, &mut arena).unwrap();
        arena.display(t, &u)
    }

    #[test]
    fn parses_atoms_and_operators() {
        assert_eq!(parse_ok("A"), "A");
        assert_eq!(parse_ok("A*B"), "A*B");
        assert_eq!(parse_ok("A+B"), "A+B");
        assert_eq!(parse_ok("A * B * C"), "A*B*C");
    }

    #[test]
    fn star_binds_tighter_than_plus() {
        assert_eq!(parse_ok("A+B*C"), "A+B*C");
        assert_eq!(parse_ok("(A+B)*C"), "(A+B)*C");
        assert_eq!(parse_ok("A*(B+C)"), "A*(B+C)");
    }

    #[test]
    fn multi_character_attribute_names() {
        assert_eq!(parse_ok("Emp*Mgr"), "Emp*Mgr");
        assert_eq!(parse_ok("A1+A_2"), "A1+A_2");
    }

    #[test]
    fn parse_equation_round_trips() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let eq = parse_equation("A = A*B", &mut u, &mut arena).unwrap();
        assert_eq!(eq.display(&arena, &u), "A=A*B");
        // The same attribute name maps to the same atom.
        let eq2 = parse_equation("B = B + A", &mut u, &mut arena).unwrap();
        assert_eq!(eq2.display(&arena, &u), "B=B+A");
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn reports_errors_with_positions() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        for bad in [
            "", "A+", "*A", "(A+B", "A)B", "A B", "A=+B", "A==B", "A=B=C",
        ] {
            let term_err = parse_term(bad, &mut u, &mut arena).is_err();
            let eq_err = parse_equation(bad, &mut u, &mut arena).is_err();
            assert!(
                term_err || eq_err,
                "input {bad:?} should fail at least one parser"
            );
        }
        let err = parse_term("A&B", &mut u, &mut arena).unwrap_err();
        assert!(matches!(err, LatticeError::Parse { .. }));
    }

    /// Destructures a parse error into `(span, expected)`.
    fn parse_failure(err: LatticeError) -> ((usize, usize), Vec<&'static str>) {
        match err {
            LatticeError::Parse {
                position,
                span,
                expected,
                ..
            } => {
                assert_eq!(position, span.0, "position mirrors the span start");
                (span, expected)
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_reports_an_empty_span_at_offset_zero() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let (span, expected) = parse_failure(parse_term("", &mut u, &mut arena).unwrap_err());
        assert_eq!(span, (0, 0));
        assert!(expected.contains(&"an attribute name"));
        assert!(expected.contains(&"`(`"));
        let (span, _) = parse_failure(parse_equation("", &mut u, &mut arena).unwrap_err());
        assert_eq!(span, (0, 0));
    }

    #[test]
    fn unclosed_parens_expect_a_closer_at_end_of_input() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let input = "(A+B";
        let (span, expected) = parse_failure(parse_term(input, &mut u, &mut arena).unwrap_err());
        assert_eq!(span, (input.len(), input.len()), "empty span at EOF");
        assert!(expected.contains(&"`)`"));
        // A nested unclosed paren fails at the same place.
        let (span, expected) =
            parse_failure(parse_equation("C = (A*(B+C)", &mut u, &mut arena).unwrap_err());
        assert_eq!(span, (12, 12));
        assert!(expected.contains(&"`)`"));
    }

    #[test]
    fn stray_operators_point_at_the_operator_byte() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        // Leading operator: the factor position 0 is the offender.
        let (span, expected) = parse_failure(parse_term("*A", &mut u, &mut arena).unwrap_err());
        assert_eq!(span, (0, 1));
        assert!(expected.contains(&"an attribute name"));
        // Doubled operator inside an equation: offender is the second `+`.
        let (span, expected) =
            parse_failure(parse_equation("A = B++C", &mut u, &mut arena).unwrap_err());
        assert_eq!(span, (6, 7));
        assert!(expected.contains(&"an attribute name"));
        // Operator with a missing right operand fails at end of input.
        let (span, _) = parse_failure(parse_term("A+", &mut u, &mut arena).unwrap_err());
        assert_eq!(span, (2, 2));
        // A term where an equation was required: the error points past the
        // term and expects `=` among the continuations.
        let (span, expected) =
            parse_failure(parse_equation("A*B", &mut u, &mut arena).unwrap_err());
        assert_eq!(span, (3, 3));
        assert!(expected.contains(&"`=`"));
        // Trailing input after a complete equation.
        let (span, expected) =
            parse_failure(parse_equation("A=B=C", &mut u, &mut arena).unwrap_err());
        assert_eq!(span, (3, 4));
        assert!(expected.contains(&"end of input"));
    }

    #[test]
    fn non_ascii_offenders_get_whole_char_spans() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        // `é` is 2 bytes; the span must cover the full character so that
        // slicing the input with it cannot panic, and the message must show
        // the character, not its first byte.
        for (input, start) in [("é", 0usize), ("A*é", 2), ("A=é", 2)] {
            let err = if input.contains('=') {
                parse_equation(input, &mut u, &mut arena).unwrap_err()
            } else {
                parse_term(input, &mut u, &mut arena).unwrap_err()
            };
            let ((lo, hi), _) = parse_failure(err.clone());
            assert_eq!((lo, hi), (start, start + 'é'.len_utf8()), "{input}");
            assert_eq!(&input[lo..hi], "é", "span must slice cleanly: {input}");
            assert!(err.to_string().contains('é'), "{err}");
        }
    }

    #[test]
    fn parse_errors_render_span_and_expected_set() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        // Stray `&` where a factor must start (inside parens).
        let err = parse_term("(&B)", &mut u, &mut arena).unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("bytes 1..2"), "{rendered}");
        assert!(
            rendered.contains("expected an attribute name or `(`"),
            "{rendered}"
        );
        // A complete term followed by garbage is a trailing-input error.
        let err = parse_term("A & B", &mut u, &mut arena).unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("bytes 2..3"), "{rendered}");
        assert!(rendered.contains("end of input"), "{rendered}");
    }

    #[test]
    fn shared_subterms_are_hash_consed() {
        let mut u = Universe::new();
        let mut arena = TermArena::new();
        let t1 = parse_term("A*B", &mut u, &mut arena).unwrap();
        let t2 = parse_term("A*B", &mut u, &mut arena).unwrap();
        assert_eq!(t1, t2);
    }
}
