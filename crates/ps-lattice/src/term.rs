//! Lattice terms (partition expressions) and the hash-consing arena.
//!
//! The paper's `W(𝒰)` is the set of finite expressions built from attributes
//! with the uninterpreted binary operators `*` and `+` (Section 2.2).  Terms
//! are stored in a [`TermArena`]: structurally identical terms share a single
//! [`TermId`], so the subterm collections used by algorithm `ALG`
//! (Section 5.2) can be represented as dense id sets.

use std::collections::HashMap;
use std::fmt;

use ps_base::{AttrSet, Attribute, Universe};

/// Identifier of a term inside a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The raw arena index.
    pub fn index(self) -> u32 {
        self.0
    }

    /// The raw arena index as `usize`.
    pub fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A single term node: an attribute, a meet (`*`) or a join (`+`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermNode {
    /// A generator: an attribute of the universe `𝒰`.
    Atom(Attribute),
    /// `lhs * rhs` — meet; interpreted as partition product.
    Meet(TermId, TermId),
    /// `lhs + rhs` — join; interpreted as partition sum.
    Join(TermId, TermId),
}

/// A hash-consing arena for lattice terms.
///
/// ```
/// use ps_base::Universe;
/// use ps_lattice::TermArena;
/// let mut u = Universe::new();
/// let (a, b) = (u.attr("A"), u.attr("B"));
/// let mut arena = TermArena::new();
/// let ta = arena.atom(a);
/// let tb = arena.atom(b);
/// let t1 = arena.meet(ta, tb);
/// assert_eq!(arena.display(t1, &u), "A*B");
/// ```
#[derive(Debug, Clone, Default)]
pub struct TermArena {
    nodes: Vec<TermNode>,
    index: HashMap<TermNode, TermId>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, node: TermNode) -> TermId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = TermId(u32::try_from(self.nodes.len()).expect("term arena overflow"));
        self.nodes.push(node);
        self.index.insert(node, id);
        id
    }

    /// Interns the atom term for `attr`.
    pub fn atom(&mut self, attr: Attribute) -> TermId {
        self.intern(TermNode::Atom(attr))
    }

    /// Looks up the atom term for `attr`, or `None` if it was never
    /// interned.
    ///
    /// Useful in contexts holding only a shared reference to the arena.
    pub fn atom_of(&self, attr: Attribute) -> Option<TermId> {
        self.index.get(&TermNode::Atom(attr)).copied()
    }

    /// Interns `lhs * rhs`.
    pub fn meet(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.intern(TermNode::Meet(lhs, rhs))
    }

    /// Interns `lhs + rhs`.
    pub fn join(&mut self, lhs: TermId, rhs: TermId) -> TermId {
        self.intern(TermNode::Join(lhs, rhs))
    }

    /// Interns the left-associated meet `A₁ * A₂ * … * A_k` of a non-empty
    /// attribute set.  This is the paper's convention for writing a set of
    /// attributes `U` as a partition expression (Section 3.2), and therefore
    /// the meaning of a relation scheme `R[U]`.
    ///
    /// # Panics
    /// Panics if `attrs` is empty.
    pub fn meet_of_attrs(&mut self, attrs: &AttrSet) -> TermId {
        assert!(
            !attrs.is_empty(),
            "a relation scheme has at least one attribute"
        );
        let mut iter = attrs.iter();
        let first = iter.next().expect("non-empty");
        let mut acc = self.atom(first);
        for a in iter {
            let rhs = self.atom(a);
            acc = self.meet(acc, rhs);
        }
        acc
    }

    /// Interns the left-associated join `A₁ + A₂ + … + A_k` of a non-empty
    /// attribute set.
    ///
    /// # Panics
    /// Panics if `attrs` is empty.
    pub fn join_of_attrs(&mut self, attrs: &AttrSet) -> TermId {
        assert!(!attrs.is_empty(), "cannot join an empty attribute set");
        let mut iter = attrs.iter();
        let first = iter.next().expect("non-empty");
        let mut acc = self.atom(first);
        for a in iter {
            let rhs = self.atom(a);
            acc = self.join(acc, rhs);
        }
        acc
    }

    /// The node behind `id`.
    ///
    /// # Panics
    /// Panics if `id` was not issued by this arena.
    pub fn node(&self, id: TermId) -> TermNode {
        self.nodes[id.as_usize()]
    }

    /// The node behind `id`, or `None` for foreign ids.
    pub fn get(&self, id: TermId) -> Option<TermNode> {
        self.nodes.get(id.as_usize()).copied()
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` denotes an atom.
    pub fn is_atom(&self, id: TermId) -> bool {
        matches!(self.node(id), TermNode::Atom(_))
    }

    /// The set of attributes occurring in the term.
    pub fn atoms(&self, id: TermId) -> AttrSet {
        let mut set = AttrSet::new();
        self.visit_subterms(id, &mut |node| {
            if let TermNode::Atom(a) = node {
                set.insert(a);
            }
        });
        set
    }

    /// All subterms of `id` (including `id` itself), deduplicated, in
    /// post-order (children before parents).
    pub fn subterms(&self, id: TermId) -> Vec<TermId> {
        let mut seen: Vec<bool> = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        self.collect_subterms(id, &mut seen, &mut out);
        out
    }

    fn collect_subterms(&self, id: TermId, seen: &mut Vec<bool>, out: &mut Vec<TermId>) {
        if seen[id.as_usize()] {
            return;
        }
        seen[id.as_usize()] = true;
        match self.node(id) {
            TermNode::Atom(_) => {}
            TermNode::Meet(l, r) | TermNode::Join(l, r) => {
                self.collect_subterms(l, seen, out);
                self.collect_subterms(r, seen, out);
            }
        }
        out.push(id);
    }

    fn visit_subterms(&self, id: TermId, f: &mut impl FnMut(TermNode)) {
        let node = self.node(id);
        f(node);
        match node {
            TermNode::Atom(_) => {}
            TermNode::Meet(l, r) | TermNode::Join(l, r) => {
                self.visit_subterms(l, f);
                self.visit_subterms(r, f);
            }
        }
    }

    /// The *complexity* of a term: the number of `*`/`+` occurrences
    /// (counting the term as a tree, i.e. shared subterms are counted once
    /// per occurrence).  This is the measure used in the finite-model
    /// argument of Theorem 8.
    pub fn complexity(&self, id: TermId) -> usize {
        match self.node(id) {
            TermNode::Atom(_) => 0,
            TermNode::Meet(l, r) | TermNode::Join(l, r) => {
                1 + self.complexity(l) + self.complexity(r)
            }
        }
    }

    /// The size of the term as a tree (number of nodes, atoms included).
    pub fn size(&self, id: TermId) -> usize {
        match self.node(id) {
            TermNode::Atom(_) => 1,
            TermNode::Meet(l, r) | TermNode::Join(l, r) => 1 + self.size(l) + self.size(r),
        }
    }

    /// The depth of the term as a tree (an atom has depth 0).
    pub fn depth(&self, id: TermId) -> usize {
        match self.node(id) {
            TermNode::Atom(_) => 0,
            TermNode::Meet(l, r) | TermNode::Join(l, r) => 1 + self.depth(l).max(self.depth(r)),
        }
    }

    /// Renders a term using attribute names from `universe`, inserting only
    /// the parentheses needed for the result to re-parse to the same term,
    /// e.g. `A*(B+C)` or `A*B*C`.
    pub fn display(&self, id: TermId, universe: &Universe) -> String {
        fn go(
            arena: &TermArena,
            id: TermId,
            universe: &Universe,
            parent: Option<u8>,
            is_right_child: bool,
        ) -> String {
            match arena.node(id) {
                TermNode::Atom(a) => universe
                    .name(a)
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("{a}")),
                TermNode::Meet(l, r) => {
                    let body = format!(
                        "{}*{}",
                        go(arena, l, universe, Some(b'*'), false),
                        go(arena, r, universe, Some(b'*'), true)
                    );
                    // `*` binds tightest; parentheses are only needed to keep
                    // a right-nested meet from re-associating to the left.
                    if parent == Some(b'*') && is_right_child {
                        format!("({body})")
                    } else {
                        body
                    }
                }
                TermNode::Join(l, r) => {
                    let body = format!(
                        "{}+{}",
                        go(arena, l, universe, Some(b'+'), false),
                        go(arena, r, universe, Some(b'+'), true)
                    );
                    let needs_parens =
                        parent == Some(b'*') || (parent == Some(b'+') && is_right_child);
                    if needs_parens {
                        format!("({body})")
                    } else {
                        body
                    }
                }
            }
        }
        go(self, id, universe, None, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Universe, TermArena, Attribute, Attribute, Attribute) {
        let mut u = Universe::new();
        let a = u.attr("A");
        let b = u.attr("B");
        let c = u.attr("C");
        (u, TermArena::new(), a, b, c)
    }

    #[test]
    fn hash_consing_shares_structurally_equal_terms() {
        let (_, mut arena, a, b, _) = setup();
        let ta = arena.atom(a);
        let tb = arena.atom(b);
        let m1 = arena.meet(ta, tb);
        let m2 = arena.meet(ta, tb);
        assert_eq!(m1, m2);
        assert_eq!(arena.len(), 3);
        // But *syntactically* different terms are distinct (no AC rewriting).
        let m3 = arena.meet(tb, ta);
        assert_ne!(m1, m3);
    }

    #[test]
    fn atom_of_finds_existing_atoms() {
        let (_, mut arena, a, _, _) = setup();
        let ta = arena.atom(a);
        assert_eq!(arena.atom_of(a), Some(ta));
    }

    #[test]
    fn atom_of_returns_none_for_missing_atom() {
        let (_, arena, a, _, _) = setup();
        assert_eq!(arena.atom_of(a), None);
    }

    #[test]
    fn meet_of_attrs_builds_left_associated_product() {
        let (u, mut arena, a, b, c) = setup();
        let set: AttrSet = vec![a, b, c].into();
        let t = arena.meet_of_attrs(&set);
        assert_eq!(arena.display(t, &u), "A*B*C");
        assert_eq!(arena.complexity(t), 2);
        assert_eq!(arena.atoms(t), set);
    }

    #[test]
    fn join_of_attrs_builds_left_associated_sum() {
        let (u, mut arena, a, b, _) = setup();
        let set: AttrSet = vec![a, b].into();
        let t = arena.join_of_attrs(&set);
        assert_eq!(arena.display(t, &u), "A+B");
    }

    #[test]
    fn subterms_are_postorder_and_deduplicated() {
        let (_, mut arena, a, b, _) = setup();
        let ta = arena.atom(a);
        let tb = arena.atom(b);
        let m = arena.meet(ta, tb);
        let j = arena.join(m, ta); // shares ta and m
        let subs = arena.subterms(j);
        assert_eq!(subs.len(), 4);
        assert_eq!(*subs.last().unwrap(), j);
        assert!(
            subs.iter().position(|&t| t == ta).unwrap()
                < subs.iter().position(|&t| t == m).unwrap()
        );
    }

    #[test]
    fn size_depth_complexity() {
        let (_, mut arena, a, b, c) = setup();
        let ta = arena.atom(a);
        let tb = arena.atom(b);
        let tc = arena.atom(c);
        let sum = arena.join(tb, tc);
        let t = arena.meet(ta, sum); // A*(B+C)
        assert_eq!(arena.size(t), 5);
        assert_eq!(arena.depth(t), 2);
        assert_eq!(arena.complexity(t), 2);
        assert!(arena.is_atom(ta));
        assert!(!arena.is_atom(t));
    }

    #[test]
    fn display_parenthesizes_joins_under_meets() {
        let (u, mut arena, a, b, c) = setup();
        let ta = arena.atom(a);
        let tb = arena.atom(b);
        let tc = arena.atom(c);
        let sum = arena.join(tb, tc);
        let t = arena.meet(ta, sum);
        assert_eq!(arena.display(t, &u), "A*(B+C)");
        let t2 = arena.join(sum, ta);
        assert_eq!(arena.display(t2, &u), "B+C+A");
        let t3 = arena.join(ta, sum);
        assert_eq!(arena.display(t3, &u), "A+(B+C)");
        let bc = arena.meet(tb, tc);
        let t4 = arena.meet(ta, bc);
        assert_eq!(arena.display(t4, &u), "A*(B*C)");
    }

    #[test]
    fn get_handles_foreign_ids() {
        let (_, mut arena, a, _, _) = setup();
        let ta = arena.atom(a);
        assert!(arena.get(ta).is_some());
        assert!(arena.get(TermId(99)).is_none());
    }
}
