//! Algorithm `ALG`: the uniform word problem for lattices (Section 5.2).
//!
//! Given a finite set of equations `E` between lattice terms and a goal
//! equation `e = e′`, decide whether every lattice with constants satisfying
//! `E` also satisfies the goal.  By Theorem 8 this single relation captures
//! implication of partition dependencies over lattices, over all relations,
//! and over finite relations alike.
//!
//! The algorithm constructs the set `V` of all subexpressions of `E`, `e`
//! and `e′`, and saturates a set `Γ ⊆ V × V` of arcs `(p, q)` meaning
//! "`p ≤_E q` is derivable" under the rules:
//!
//! 1. reflexivity `(v, v)`;
//! 2. `(p,s), (q,s) ⟹ (p+q, s)` when `p+q ∈ V`;
//! 3. `(p,s) or (q,s) ⟹ (p*q, s)` when `p*q ∈ V`;
//! 4. `(s,p), (s,q) ⟹ (s, p*q)` when `p*q ∈ V`;
//! 5. `(s,p) or (s,q) ⟹ (s, p+q)` when `p+q ∈ V`;
//! 6. `(p,q), (q,p)` for every equation `p = q` in `E`;
//! 7. transitivity.
//!
//! Lemma 9.2 shows that for `p, q ∈ V`, `p ≤_E q` iff `(p, q)` ends up in
//! `Γ`.  Two saturation strategies are provided (see [`Algorithm`]): the
//! paper's literal repeat-until-no-change fixpoint (`O(n⁴)` with the
//! straightforward implementation) and an incremental worklist propagation
//! that fires only the rule instances affected by each newly added arc.
//! They compute the same closure; the benchmark suite compares them
//! (experiment E7).

use std::collections::HashMap;

use ps_base::Universe;

use crate::{BitMatrix, Equation, TermArena, TermId, TermNode};

/// Saturation strategy for algorithm `ALG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// The paper's literal "repeat until no new arcs are added" loop, scanning
    /// all rule instances each round.  Straightforward `O(n⁴)`.
    NaiveFixpoint,
    /// Incremental worklist propagation: each newly inserted arc triggers only
    /// the rule instances it can participate in.  Same closure, lower constant
    /// and better asymptotics in practice.
    #[default]
    Worklist,
}

/// The saturated derived order `≤_E` restricted to the subexpression set `V`.
///
/// Build it once per constraint set (plus any goal terms of interest) with
/// [`DerivedOrder::build`], then query arbitrarily many pairs with
/// [`DerivedOrder::leq`] / [`DerivedOrder::entails`].
#[derive(Debug, Clone)]
pub struct DerivedOrder {
    /// The terms making up `V`, in dense order.
    terms: Vec<TermId>,
    /// Map from term id to dense index in `terms`.
    dense: HashMap<TermId, usize>,
    /// `gamma[i][j]` iff `terms[i] ≤_E terms[j]` is derivable.
    gamma: BitMatrix,
    /// Number of saturation rounds (naïve) or processed arcs (worklist).
    work: usize,
}

impl DerivedOrder {
    /// Runs algorithm `ALG` for the equations `E = equations`, making sure
    /// every term in `extra_terms` (e.g. the two sides of a goal equation)
    /// is included in the subexpression set `V`.
    pub fn build(
        arena: &TermArena,
        equations: &[Equation],
        extra_terms: &[TermId],
        algorithm: Algorithm,
    ) -> Self {
        // --- Collect V: all subterms of E and the extra terms. ---
        let mut terms: Vec<TermId> = Vec::new();
        let mut dense: HashMap<TermId, usize> = HashMap::new();
        let add_subterms =
            |root: TermId, terms: &mut Vec<TermId>, dense: &mut HashMap<TermId, usize>| {
                for t in arena.subterms(root) {
                    dense.entry(t).or_insert_with(|| {
                        terms.push(t);
                        terms.len() - 1
                    });
                }
            };
        for eq in equations {
            add_subterms(eq.lhs, &mut terms, &mut dense);
            add_subterms(eq.rhs, &mut terms, &mut dense);
        }
        for &t in extra_terms {
            add_subterms(t, &mut terms, &mut dense);
        }

        let n = terms.len();
        let mut gamma = BitMatrix::new(n);

        // Seed rule 1 (reflexivity) and rule 6 (the equations of E).
        for i in 0..n {
            gamma.set(i, i);
        }
        let mut seeds: Vec<(usize, usize)> = Vec::new();
        for eq in equations {
            let (i, j) = (dense[&eq.lhs], dense[&eq.rhs]);
            seeds.push((i, j));
            seeds.push((j, i));
        }

        let work = match algorithm {
            Algorithm::NaiveFixpoint => {
                for (i, j) in seeds {
                    gamma.set(i, j);
                }
                saturate_naive(arena, &terms, &dense, &mut gamma)
            }
            Algorithm::Worklist => saturate_worklist(arena, &terms, &dense, &mut gamma, seeds),
        };

        DerivedOrder {
            terms,
            dense,
            gamma,
            work,
        }
    }

    /// Whether `lhs ≤_E rhs` is derivable.  Both terms must be members of
    /// the subexpression set `V` this order was built over (pass them as
    /// `extra_terms` to [`DerivedOrder::build`]); foreign terms yield
    /// `None`.
    pub fn leq(&self, lhs: TermId, rhs: TermId) -> Option<bool> {
        let (&i, &j) = (self.dense.get(&lhs)?, self.dense.get(&rhs)?);
        Some(self.gamma.get(i, j))
    }

    /// Whether the equation `goal` is entailed: both `lhs ≤_E rhs` and
    /// `rhs ≤_E lhs`.
    pub fn entails(&self, goal: Equation) -> Option<bool> {
        Some(self.leq(goal.lhs, goal.rhs)? && self.leq(goal.rhs, goal.lhs)?)
    }

    /// The subexpression set `V` (dense order).
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Number of derived arcs in `Γ`.
    pub fn num_arcs(&self) -> usize {
        self.gamma.count_ones()
    }

    /// A rough work counter (rounds for the naïve strategy, processed arcs
    /// for the worklist strategy); exposed for the benchmark reports.
    pub fn work(&self) -> usize {
        self.work
    }

    /// All pairs of *atoms* `(A, B)` with `A ≤_E B`; used by the consistency
    /// pipeline of Section 6.2 to compute the closure `E⁺`.
    pub fn atom_consequences(&self, arena: &TermArena) -> Vec<(TermId, TermId)> {
        let mut out = Vec::new();
        for (i, &p) in self.terms.iter().enumerate() {
            if !arena.is_atom(p) {
                continue;
            }
            for j in self.gamma.iter_row(i) {
                let q = self.terms[j];
                if i != j && arena.is_atom(q) {
                    out.push((p, q));
                }
            }
        }
        out
    }

    /// Renders the derived order as a list of `p ≤ q` lines (for debugging
    /// and the examples).
    pub fn render(&self, arena: &TermArena, universe: &Universe) -> String {
        let mut lines = Vec::new();
        for (i, &p) in self.terms.iter().enumerate() {
            for j in self.gamma.iter_row(i) {
                if i == j {
                    continue;
                }
                let q = self.terms[j];
                lines.push(format!(
                    "{} <= {}",
                    arena.display(p, universe),
                    arena.display(q, universe)
                ));
            }
        }
        lines.join("\n")
    }
}

/// The paper's repeat-until-stable saturation.  Returns the number of rounds.
fn saturate_naive(
    arena: &TermArena,
    terms: &[TermId],
    dense: &HashMap<TermId, usize>,
    gamma: &mut BitMatrix,
) -> usize {
    let n = terms.len();
    // Pre-resolve the children of every composite term in V.
    let composites: Vec<(usize, usize, usize, bool)> = terms
        .iter()
        .enumerate()
        .filter_map(|(i, &t)| match arena.node(t) {
            TermNode::Meet(l, r) => Some((i, dense[&l], dense[&r], true)),
            TermNode::Join(l, r) => Some((i, dense[&l], dense[&r], false)),
            TermNode::Atom(_) => None,
        })
        .collect();

    let mut rounds = 0;
    loop {
        rounds += 1;
        let before = gamma.count_ones();

        // Rules 2–5: scan every composite against every s ∈ V.
        for &(c, l, r, is_meet) in &composites {
            for s in 0..n {
                if is_meet {
                    // rule 3: (l,s) or (r,s) ⟹ (c,s)
                    if gamma.get(l, s) || gamma.get(r, s) {
                        gamma.set(c, s);
                    }
                    // rule 4: (s,l) and (s,r) ⟹ (s,c)
                    if gamma.get(s, l) && gamma.get(s, r) {
                        gamma.set(s, c);
                    }
                } else {
                    // rule 2: (l,s) and (r,s) ⟹ (c,s)
                    if gamma.get(l, s) && gamma.get(r, s) {
                        gamma.set(c, s);
                    }
                    // rule 5: (s,l) or (s,r) ⟹ (s,c)
                    if gamma.get(s, l) || gamma.get(s, r) {
                        gamma.set(s, c);
                    }
                }
            }
        }

        // Rule 7: transitivity.
        gamma.transitive_closure();

        if gamma.count_ones() == before {
            return rounds;
        }
    }
}

/// Incremental worklist saturation.  Returns the number of arcs processed.
fn saturate_worklist(
    arena: &TermArena,
    terms: &[TermId],
    dense: &HashMap<TermId, usize>,
    gamma: &mut BitMatrix,
    seeds: Vec<(usize, usize)>,
) -> usize {
    let n = terms.len();

    // For every term index, the composite terms it occurs in as a direct child.
    #[derive(Default, Clone)]
    struct Occurrences {
        /// (composite, sibling) pairs where the composite is a meet.
        meets: Vec<(usize, usize)>,
        /// (composite, sibling) pairs where the composite is a join.
        joins: Vec<(usize, usize)>,
    }
    let mut occ: Vec<Occurrences> = vec![Occurrences::default(); n];
    for (i, &t) in terms.iter().enumerate() {
        match arena.node(t) {
            TermNode::Meet(l, r) => {
                let (dl, dr) = (dense[&l], dense[&r]);
                occ[dl].meets.push((i, dr));
                occ[dr].meets.push((i, dl));
            }
            TermNode::Join(l, r) => {
                let (dl, dr) = (dense[&l], dense[&r]);
                occ[dl].joins.push((i, dr));
                occ[dr].joins.push((i, dl));
            }
            TermNode::Atom(_) => {}
        }
    }

    let mut queue: Vec<(usize, usize)> = Vec::new();
    let push = |gamma: &mut BitMatrix, queue: &mut Vec<(usize, usize)>, u: usize, v: usize| {
        if gamma.set(u, v) {
            queue.push((u, v));
        }
    };

    // Reflexive arcs already set by the caller; enqueue them so rules can fire.
    for i in 0..n {
        queue.push((i, i));
    }
    for (u, v) in seeds {
        push(gamma, &mut queue, u, v);
    }

    let mut processed = 0;
    while let Some((u, v)) = queue.pop() {
        processed += 1;

        // Rule 7 (transitivity): (u,v) with existing (v,w) gives (u,w);
        // existing (w,u) gives (w,v).
        let succs: Vec<usize> = gamma.iter_row(v).collect();
        for w in succs {
            push(gamma, &mut queue, u, w);
        }
        for w in 0..n {
            if gamma.get(w, u) {
                push(gamma, &mut queue, w, v);
            }
        }

        // Rules 3 & 2: u is a child of a composite; the new arc (u, v) may
        // let the composite reach v.
        for &(c, _sibling) in &occ[u].meets {
            // rule 3: (u,v) ⟹ (c,v) for meets c = u*sibling (either child suffices).
            push(gamma, &mut queue, c, v);
        }
        for &(c, sibling) in &occ[u].joins {
            // rule 2: (u,v) and (sibling,v) ⟹ (c,v) for joins.
            if gamma.get(sibling, v) {
                push(gamma, &mut queue, c, v);
            }
        }

        // Rules 5 & 4: v is a child of a composite; the new arc (u, v) may
        // let u reach the composite.
        for &(c, _sibling) in &occ[v].joins {
            // rule 5: (u,v) ⟹ (u,c) for joins c = v+sibling.
            push(gamma, &mut queue, u, c);
        }
        for &(c, sibling) in &occ[v].meets {
            // rule 4: (u,v) and (u,sibling) ⟹ (u,c) for meets.
            if gamma.get(u, sibling) {
                push(gamma, &mut queue, u, c);
            }
        }
    }
    processed
}

/// Convenience: does `E` entail the equation `goal` (the uniform word
/// problem / PD implication, Theorem 8)?
pub fn entails(
    arena: &TermArena,
    equations: &[Equation],
    goal: Equation,
    algorithm: Algorithm,
) -> bool {
    DerivedOrder::build(arena, equations, &[goal.lhs, goal.rhs], algorithm)
        .entails(goal)
        .expect("goal terms are in V by construction")
}

/// Convenience: does `E` entail `lhs ≤ rhs`?
pub fn entails_leq(
    arena: &TermArena,
    equations: &[Equation],
    lhs: TermId,
    rhs: TermId,
    algorithm: Algorithm,
) -> bool {
    DerivedOrder::build(arena, equations, &[lhs, rhs], algorithm)
        .leq(lhs, rhs)
        .expect("goal terms are in V by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{free_order, parse_equation, parse_term};
    use ps_base::Universe;

    struct Fixture {
        universe: Universe,
        arena: TermArena,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                universe: Universe::new(),
                arena: TermArena::new(),
            }
        }
        fn eq(&mut self, s: &str) -> Equation {
            parse_equation(s, &mut self.universe, &mut self.arena).unwrap()
        }
        fn t(&mut self, s: &str) -> TermId {
            parse_term(s, &mut self.universe, &mut self.arena).unwrap()
        }
    }

    const BOTH: [Algorithm; 2] = [Algorithm::NaiveFixpoint, Algorithm::Worklist];

    #[test]
    fn empty_e_entails_exactly_the_identities() {
        let mut f = Fixture::new();
        let identity = f.eq("A*(A+B)=A");
        let non_identity = f.eq("A*(B+C)=(A*B)+(A*C)");
        for algo in BOTH {
            assert!(entails(&f.arena, &[], identity, algo));
            assert!(!entails(&f.arena, &[], non_identity, algo));
        }
    }

    #[test]
    fn fd_style_transitivity() {
        // A=A*B (A→B) and B=B*C (B→C) entail A=A*C (A→C).
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B"), f.eq("B=B*C")];
        let goal = f.eq("A=A*C");
        let non_goal = f.eq("C=C*A");
        for algo in BOTH {
            assert!(entails(&f.arena, &e, goal, algo));
            assert!(!entails(&f.arena, &e, non_goal, algo));
        }
    }

    #[test]
    fn fpd_duality_meet_and_join_forms() {
        // A = A*B is equivalent to B = B+A: each entails the other.
        let mut f = Fixture::new();
        let meet_form = f.eq("A=A*B");
        let join_form = f.eq("B=B+A");
        for algo in BOTH {
            assert!(entails(&f.arena, &[meet_form], join_form, algo));
            assert!(entails(&f.arena, &[join_form], meet_form, algo));
        }
    }

    #[test]
    fn sum_dependency_consequences() {
        // From C = A + B we get A ≤ C and B ≤ C, i.e. A = A*C and B = B*C.
        let mut f = Fixture::new();
        let e = vec![f.eq("C=A+B")];
        let a_leq_c = f.eq("A=A*C");
        let b_leq_c = f.eq("B=B*C");
        let c_leq_a = f.eq("C=C*A");
        for algo in BOTH {
            assert!(entails(&f.arena, &e, a_leq_c, algo));
            assert!(entails(&f.arena, &e, b_leq_c, algo));
            assert!(!entails(&f.arena, &e, c_leq_a, algo));
        }
    }

    #[test]
    fn example_f_product_equation_decomposition() {
        // Example f: X = Y*Z is equivalent to {X = X*(Y*Z), Y*Z = Y*Z*X}.
        let mut f = Fixture::new();
        let original = f.eq("X=Y*Z");
        let dec1 = f.eq("X=X*(Y*Z)");
        let dec2 = f.eq("Y*Z=Y*Z*X");
        for algo in BOTH {
            assert!(entails(&f.arena, &[original], dec1, algo));
            assert!(entails(&f.arena, &[original], dec2, algo));
            assert!(entails(&f.arena, &[dec1, dec2], original, algo));
        }
    }

    #[test]
    fn theorem4_remark_sum_equation_decomposes_into_fpds() {
        // C = A+B entails A=A*C, B=B*C and C=C*(A+B);
        // and conversely {A=A*C, B=B*C, C=C*(A+B)} entails C=A+B.
        let mut f = Fixture::new();
        let sum_eq = f.eq("C=A+B");
        let fpd_a = f.eq("A=A*C");
        let fpd_b = f.eq("B=B*C");
        let c_below = f.eq("C=C*(A+B)");
        for algo in BOTH {
            assert!(entails(&f.arena, &[sum_eq], fpd_a, algo));
            assert!(entails(&f.arena, &[sum_eq], fpd_b, algo));
            assert!(entails(&f.arena, &[sum_eq], c_below, algo));
            assert!(entails(&f.arena, &[fpd_a, fpd_b, c_below], sum_eq, algo));
        }
    }

    #[test]
    fn equations_propagate_through_contexts() {
        // From A = B we should get A+C = B+C and A*C = B*C.
        let mut f = Fixture::new();
        let e = vec![f.eq("A=B")];
        let joins = f.eq("A+C=B+C");
        let meets = f.eq("A*C=B*C");
        for algo in BOTH {
            assert!(entails(&f.arena, &e, joins, algo));
            assert!(entails(&f.arena, &e, meets, algo));
        }
    }

    #[test]
    fn naive_and_worklist_agree_on_random_style_inputs() {
        let mut f = Fixture::new();
        let e = vec![
            f.eq("A=A*B"),
            f.eq("C=B+D"),
            f.eq("D=D*(A+C)"),
            f.eq("E=A*C"),
        ];
        let goals = vec![
            f.eq("A=A*C"),
            f.eq("B=B*C"),
            f.eq("D=D*C"),
            f.eq("E=E*B"),
            f.eq("A+D=C+A"),
            f.eq("E=A"),
        ];
        for goal in goals {
            let naive = entails(&f.arena, &e, goal, Algorithm::NaiveFixpoint);
            let fast = entails(&f.arena, &e, goal, Algorithm::Worklist);
            assert_eq!(naive, fast, "{}", goal.display(&f.arena, &f.universe));
        }
    }

    #[test]
    fn derived_order_exposes_atom_consequences() {
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B"), f.eq("B=B*C")];
        let a = f.t("A");
        let b = f.t("B");
        let c = f.t("C");
        let order = DerivedOrder::build(&f.arena, &e, &[a, b, c], Algorithm::Worklist);
        let consequences = order.atom_consequences(&f.arena);
        assert!(consequences.contains(&(a, b)));
        assert!(consequences.contains(&(a, c)));
        assert!(consequences.contains(&(b, c)));
        assert!(!consequences.contains(&(c, a)));
        assert!(order.num_arcs() > 0);
        assert!(order.work() > 0);
        assert!(!order.render(&f.arena, &f.universe).is_empty());
        assert_eq!(order.leq(a, b), Some(true));
        assert_eq!(order.leq(c, a), Some(false));
    }

    #[test]
    fn entailment_is_sound_with_respect_to_the_free_order() {
        // With E = ∅, ≤_E coincides with ≤_id on the terms of V.
        let mut f = Fixture::new();
        let pairs = [
            ("A*(B+C)", "(A*B)+(A*C)"),
            ("(A*B)+(A*C)", "A*(B+C)"),
            ("A*B*C", "A+B"),
            ("A+B", "A*B*C"),
            ("(A+B)*(A+C)", "A+(B*C)"),
            ("A+(B*C)", "(A+B)*(A+C)"),
        ];
        for (l, r) in pairs {
            let lt = f.t(l);
            let rt = f.t(r);
            for algo in BOTH {
                assert_eq!(
                    entails_leq(&f.arena, &[], lt, rt, algo),
                    free_order::leq_id(&f.arena, lt, rt),
                    "{l} <= {r}"
                );
            }
        }
    }

    #[test]
    fn goal_terms_outside_v_are_rejected_gracefully() {
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B")];
        let a = f.t("A");
        let stranger = f.t("X+Y");
        let order = DerivedOrder::build(&f.arena, &e, &[], Algorithm::Worklist);
        assert_eq!(order.leq(a, stranger), None);
        assert_eq!(order.entails(Equation::new(a, stranger)), None);
    }
}
