//! Algorithm `ALG`: the uniform word problem for lattices (Section 5.2).
//!
//! Given a finite set of equations `E` between lattice terms and a goal
//! equation `e = e′`, decide whether every lattice with constants satisfying
//! `E` also satisfies the goal.  By Theorem 8 this single relation captures
//! implication of partition dependencies over lattices, over all relations,
//! and over finite relations alike.
//!
//! The algorithm constructs the set `V` of all subexpressions of `E`, `e`
//! and `e′`, and saturates a set `Γ ⊆ V × V` of arcs `(p, q)` meaning
//! "`p ≤_E q` is derivable" under the rules:
//!
//! 1. reflexivity `(v, v)`;
//! 2. `(p,s), (q,s) ⟹ (p+q, s)` when `p+q ∈ V`;
//! 3. `(p,s) or (q,s) ⟹ (p*q, s)` when `p*q ∈ V`;
//! 4. `(s,p), (s,q) ⟹ (s, p*q)` when `p*q ∈ V`;
//! 5. `(s,p) or (s,q) ⟹ (s, p+q)` when `p+q ∈ V`;
//! 6. `(p,q), (q,p)` for every equation `p = q` in `E`;
//! 7. transitivity.
//!
//! Lemma 9.2 shows that for `p, q ∈ V`, `p ≤_E q` iff `(p, q)` ends up in
//! `Γ`.  Crucially, the restriction of the saturated `Γ` to any subset of
//! `V` depends only on `E` — enlarging `V` never changes the verdict on
//! terms already present.  That independence is what makes the closure
//! *cacheable* and *incrementally extendable*, and this module exploits it
//! at two levels:
//!
//! * [`ImplicationEngine`] — the production engine.  Built **once** per
//!   constraint set `E`, it owns the arena-dense subexpression universe `V`
//!   and the saturated `Γ` (stored as a [`BitMatrix`] pair: successor rows
//!   and their transpose), answers arbitrarily many [`ImplicationEngine::leq`]
//!   / [`ImplicationEngine::entails`] queries without re-saturating, and
//!   grows on demand: [`ImplicationEngine::add_goal_terms`] appends new
//!   subterms to `V` and re-saturates only the worklist frontier seeded by
//!   the new rows/columns.  Rules 2–5 and transitivity fire as word-parallel
//!   row OR/AND operations ([`BitMatrix::or_row_into_delta`],
//!   [`BitMatrix::or_and_rows_into_delta`]) instead of per-pair probes, and a
//!   rule-firing counter ([`ImplicationEngine::rule_firings`]) exposes the
//!   work done so the benchmark suite can assert that build-once-query-many
//!   does strictly less work than rebuilding per goal.
//! * [`DerivedOrder`] — the reference implementation, rebuilt from scratch
//!   per instance.  Two saturation strategies are provided (see
//!   [`Algorithm`]): the paper's literal repeat-until-no-change fixpoint
//!   (`O(n⁴)` with the straightforward implementation) and an incremental
//!   worklist propagation that fires only the rule instances affected by
//!   each newly added arc.  Property tests pin the engine to these
//!   references; the benchmark suite compares all three (experiment E7 and
//!   the `word_problem` bench group).

use std::collections::{HashMap, VecDeque};

use ps_base::Universe;

use crate::{BitMatrix, Equation, TermArena, TermId, TermNode};

/// Saturation strategy for algorithm `ALG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// The paper's literal "repeat until no new arcs are added" loop, scanning
    /// all rule instances each round.  Straightforward `O(n⁴)`.
    NaiveFixpoint,
    /// Incremental worklist propagation: each newly inserted arc triggers only
    /// the rule instances it can participate in.  Same closure, lower constant
    /// and better asymptotics in practice.
    #[default]
    Worklist,
}

/// The saturated derived order `≤_E` restricted to the subexpression set `V`.
///
/// Build it once per constraint set (plus any goal terms of interest) with
/// [`DerivedOrder::build`], then query arbitrarily many pairs with
/// [`DerivedOrder::leq`] / [`DerivedOrder::entails`].
#[derive(Debug, Clone)]
pub struct DerivedOrder {
    /// The terms making up `V`, in dense order.
    terms: Vec<TermId>,
    /// Map from term id to dense index in `terms`.
    dense: HashMap<TermId, usize>,
    /// `gamma[i][j]` iff `terms[i] ≤_E terms[j]` is derivable.
    gamma: BitMatrix,
    /// Number of saturation rounds (naïve) or processed arcs (worklist).
    work: usize,
}

impl DerivedOrder {
    /// Runs algorithm `ALG` for the equations `E = equations`, making sure
    /// every term in `extra_terms` (e.g. the two sides of a goal equation)
    /// is included in the subexpression set `V`.
    pub fn build(
        arena: &TermArena,
        equations: &[Equation],
        extra_terms: &[TermId],
        algorithm: Algorithm,
    ) -> Self {
        // --- Collect V: all subterms of E and the extra terms. ---
        let mut terms: Vec<TermId> = Vec::new();
        let mut dense: HashMap<TermId, usize> = HashMap::new();
        let add_subterms =
            |root: TermId, terms: &mut Vec<TermId>, dense: &mut HashMap<TermId, usize>| {
                for t in arena.subterms(root) {
                    dense.entry(t).or_insert_with(|| {
                        terms.push(t);
                        terms.len() - 1
                    });
                }
            };
        for eq in equations {
            add_subterms(eq.lhs, &mut terms, &mut dense);
            add_subterms(eq.rhs, &mut terms, &mut dense);
        }
        for &t in extra_terms {
            add_subterms(t, &mut terms, &mut dense);
        }

        let n = terms.len();
        let mut gamma = BitMatrix::new(n);

        // Seed rule 1 (reflexivity) and rule 6 (the equations of E).
        for i in 0..n {
            gamma.set(i, i);
        }
        let mut seeds: Vec<(usize, usize)> = Vec::new();
        for eq in equations {
            let (i, j) = (dense[&eq.lhs], dense[&eq.rhs]);
            seeds.push((i, j));
            seeds.push((j, i));
        }

        let work = match algorithm {
            Algorithm::NaiveFixpoint => {
                for (i, j) in seeds {
                    gamma.set(i, j);
                }
                saturate_naive(arena, &terms, &dense, &mut gamma)
            }
            Algorithm::Worklist => saturate_worklist(arena, &terms, &dense, &mut gamma, seeds),
        };

        DerivedOrder {
            terms,
            dense,
            gamma,
            work,
        }
    }

    /// Whether `lhs ≤_E rhs` is derivable.
    ///
    /// # The `Option` contract
    ///
    /// Both terms must be members of the subexpression set `V` this order
    /// was built over (pass them as `extra_terms` to [`DerivedOrder::build`]).
    /// A foreign term yields `None` — which means "not a member of `V`",
    /// **not** "not entailed".  Callers must not collapse `None` into
    /// `false`: a `None` is a construction bug (the goal was forgotten when
    /// the order was built), and treating it as a negative verdict silently
    /// turns that bug into a wrong answer.  Debug builds therefore assert
    /// membership; use [`DerivedOrder::contains_term`] to query membership
    /// explicitly.
    pub fn leq(&self, lhs: TermId, rhs: TermId) -> Option<bool> {
        debug_assert!(
            self.dense.contains_key(&lhs) && self.dense.contains_key(&rhs),
            "DerivedOrder::leq queried with a term outside V — \
             include goal terms via `extra_terms` when building"
        );
        let (&i, &j) = (self.dense.get(&lhs)?, self.dense.get(&rhs)?);
        Some(self.gamma.get(i, j))
    }

    /// Whether the equation `goal` is entailed: both `lhs ≤_E rhs` and
    /// `rhs ≤_E lhs`.
    ///
    /// Shares the [`Option` contract](DerivedOrder::leq) of `leq`: `None`
    /// means a goal term is outside `V` (asserted in debug builds), never
    /// "not entailed".
    pub fn entails(&self, goal: Equation) -> Option<bool> {
        Some(self.leq(goal.lhs, goal.rhs)? && self.leq(goal.rhs, goal.lhs)?)
    }

    /// Whether `term` is a member of the subexpression set `V`, i.e. whether
    /// [`DerivedOrder::leq`] can answer queries about it.
    pub fn contains_term(&self, term: TermId) -> bool {
        self.dense.contains_key(&term)
    }

    /// The subexpression set `V` (dense order).
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Number of derived arcs in `Γ`.
    pub fn num_arcs(&self) -> usize {
        self.gamma.count_ones()
    }

    /// A rough work counter (rounds for the naïve strategy, processed arcs
    /// for the worklist strategy); exposed for the benchmark reports.
    pub fn work(&self) -> usize {
        self.work
    }

    /// Number of rule firings performed while saturating `Γ`.
    ///
    /// A *firing* is a rule application that actually inserted a new arc
    /// (rules 1–7; each arc is inserted exactly once, whichever rule gets
    /// there first, so the count is strategy-independent).
    /// [`ImplicationEngine::rule_firings`] counts the same unit, which is
    /// what lets the ps-bench fixtures compare build-once-query-many against
    /// rebuild-per-goal by counter.
    pub fn rule_firings(&self) -> usize {
        self.gamma.count_ones()
    }

    /// All pairs of *atoms* `(A, B)` with `A ≤_E B`; used by the consistency
    /// pipeline of Section 6.2 to compute the closure `E⁺`.
    pub fn atom_consequences(&self, arena: &TermArena) -> Vec<(TermId, TermId)> {
        atom_consequence_pairs(&self.terms, &self.gamma, arena)
    }

    /// Renders the derived order as a list of `p ≤ q` lines (for debugging
    /// and the examples).
    pub fn render(&self, arena: &TermArena, universe: &Universe) -> String {
        let mut lines = Vec::new();
        for (i, &p) in self.terms.iter().enumerate() {
            for j in self.gamma.iter_row(i) {
                if i == j {
                    continue;
                }
                let q = self.terms[j];
                lines.push(format!(
                    "{} <= {}",
                    arena.display(p, universe),
                    arena.display(q, universe)
                ));
            }
        }
        lines.join("\n")
    }
}

/// The paper's repeat-until-stable saturation.  Returns the number of rounds.
fn saturate_naive(
    arena: &TermArena,
    terms: &[TermId],
    dense: &HashMap<TermId, usize>,
    gamma: &mut BitMatrix,
) -> usize {
    let n = terms.len();
    // Pre-resolve the children of every composite term in V.
    let composites: Vec<(usize, usize, usize, bool)> = terms
        .iter()
        .enumerate()
        .filter_map(|(i, &t)| match arena.node(t) {
            TermNode::Meet(l, r) => Some((i, dense[&l], dense[&r], true)),
            TermNode::Join(l, r) => Some((i, dense[&l], dense[&r], false)),
            TermNode::Atom(_) => None,
        })
        .collect();

    let mut rounds = 0;
    loop {
        rounds += 1;
        let before = gamma.count_ones();

        // Rules 2–5: scan every composite against every s ∈ V.
        for &(c, l, r, is_meet) in &composites {
            for s in 0..n {
                if is_meet {
                    // rule 3: (l,s) or (r,s) ⟹ (c,s)
                    if gamma.get(l, s) || gamma.get(r, s) {
                        gamma.set(c, s);
                    }
                    // rule 4: (s,l) and (s,r) ⟹ (s,c)
                    if gamma.get(s, l) && gamma.get(s, r) {
                        gamma.set(s, c);
                    }
                } else {
                    // rule 2: (l,s) and (r,s) ⟹ (c,s)
                    if gamma.get(l, s) && gamma.get(r, s) {
                        gamma.set(c, s);
                    }
                    // rule 5: (s,l) or (s,r) ⟹ (s,c)
                    if gamma.get(s, l) || gamma.get(s, r) {
                        gamma.set(s, c);
                    }
                }
            }
        }

        // Rule 7: transitivity.
        gamma.transitive_closure();

        if gamma.count_ones() == before {
            return rounds;
        }
    }
}

/// Incremental worklist saturation.  Returns the number of arcs processed.
fn saturate_worklist(
    arena: &TermArena,
    terms: &[TermId],
    dense: &HashMap<TermId, usize>,
    gamma: &mut BitMatrix,
    seeds: Vec<(usize, usize)>,
) -> usize {
    let n = terms.len();

    // For every term index, the composite terms it occurs in as a direct child.
    #[derive(Default, Clone)]
    struct Occurrences {
        /// (composite, sibling) pairs where the composite is a meet.
        meets: Vec<(usize, usize)>,
        /// (composite, sibling) pairs where the composite is a join.
        joins: Vec<(usize, usize)>,
    }
    let mut occ: Vec<Occurrences> = vec![Occurrences::default(); n];
    for (i, &t) in terms.iter().enumerate() {
        match arena.node(t) {
            TermNode::Meet(l, r) => {
                let (dl, dr) = (dense[&l], dense[&r]);
                occ[dl].meets.push((i, dr));
                occ[dr].meets.push((i, dl));
            }
            TermNode::Join(l, r) => {
                let (dl, dr) = (dense[&l], dense[&r]);
                occ[dl].joins.push((i, dr));
                occ[dr].joins.push((i, dl));
            }
            TermNode::Atom(_) => {}
        }
    }

    let mut queue: Vec<(usize, usize)> = Vec::new();
    let push = |gamma: &mut BitMatrix, queue: &mut Vec<(usize, usize)>, u: usize, v: usize| {
        if gamma.set(u, v) {
            queue.push((u, v));
        }
    };

    // Reflexive arcs already set by the caller; enqueue them so rules can fire.
    for i in 0..n {
        queue.push((i, i));
    }
    for (u, v) in seeds {
        push(gamma, &mut queue, u, v);
    }

    let mut processed = 0;
    while let Some((u, v)) = queue.pop() {
        processed += 1;

        // Rule 7 (transitivity): (u,v) with existing (v,w) gives (u,w);
        // existing (w,u) gives (w,v).
        let succs: Vec<usize> = gamma.iter_row(v).collect();
        for w in succs {
            push(gamma, &mut queue, u, w);
        }
        for w in 0..n {
            if gamma.get(w, u) {
                push(gamma, &mut queue, w, v);
            }
        }

        // Rules 3 & 2: u is a child of a composite; the new arc (u, v) may
        // let the composite reach v.
        for &(c, _sibling) in &occ[u].meets {
            // rule 3: (u,v) ⟹ (c,v) for meets c = u*sibling (either child suffices).
            push(gamma, &mut queue, c, v);
        }
        for &(c, sibling) in &occ[u].joins {
            // rule 2: (u,v) and (sibling,v) ⟹ (c,v) for joins.
            if gamma.get(sibling, v) {
                push(gamma, &mut queue, c, v);
            }
        }

        // Rules 5 & 4: v is a child of a composite; the new arc (u, v) may
        // let u reach the composite.
        for &(c, _sibling) in &occ[v].joins {
            // rule 5: (u,v) ⟹ (u,c) for joins c = v+sibling.
            push(gamma, &mut queue, u, c);
        }
        for &(c, sibling) in &occ[v].meets {
            // rule 4: (u,v) and (u,sibling) ⟹ (u,c) for meets.
            if gamma.get(u, sibling) {
                push(gamma, &mut queue, u, c);
            }
        }
    }
    processed
}

/// Collects all `(A, B)` atom pairs with an `A ≤_E B` arc in `gamma` —
/// shared by [`DerivedOrder::atom_consequences`] and
/// [`ImplicationEngine::atom_consequences`] so the two engines cannot drift
/// apart on the atom-pair semantics the Section 6.2 closure relies on.
fn atom_consequence_pairs(
    terms: &[TermId],
    gamma: &BitMatrix,
    arena: &TermArena,
) -> Vec<(TermId, TermId)> {
    let mut out = Vec::new();
    for (i, &p) in terms.iter().enumerate() {
        if !arena.is_atom(p) {
            continue;
        }
        for j in gamma.iter_row(i) {
            let q = terms[j];
            if i != j && arena.is_atom(q) {
                out.push((p, q));
            }
        }
    }
    out
}

/// For one term, the composites of `V` it occurs in as a direct child,
/// together with the dense index of the sibling child.
#[derive(Debug, Default, Clone)]
struct Occurrences {
    /// `(composite, sibling)` pairs where the composite is a meet.
    meets: Vec<(usize, usize)>,
    /// `(composite, sibling)` pairs where the composite is a join.
    joins: Vec<(usize, usize)>,
}

/// The cached, incrementally extendable implication engine for algorithm
/// `ALG` — build once per constraint set `E`, query many goals.
///
/// The engine owns the subexpression universe `V` (every subterm of `E`,
/// plus whatever goal terms have been added) and the saturated derived order
/// `Γ`, stored twice for word-parallelism: `succ` holds successor rows
/// (`succ[i][j]` iff `terms[i] ≤_E terms[j]`) and `pred` its transpose.
/// Rules 2–5 and transitivity all become row OR / AND-OR operations on one
/// of the two matrices, so saturation moves 64 arcs per word instead of
/// probing pairs:
///
/// * rule 3 (meet `c = l*r`): `succ[c] |= succ[l]` (and symmetrically `r`);
/// * rule 2 (join `c = l+r`): `succ[c] |= succ[l] & succ[r]`;
/// * rule 5 (join `c = l+r`): `pred[c] |= pred[l]` (and symmetrically `r`);
/// * rule 4 (meet `c = l*r`): `pred[c] |= pred[l] & pred[r]`;
/// * rule 7 (transitivity): `succ[u] |= succ[x]` for `u ∈ pred[x]`, and
///   `pred[v] |= pred[x]` for `v ∈ succ[x]`.
///
/// A worklist of dirty terms drives the fixpoint: every newly inserted arc
/// `(u, v)` marks `u` successor-dirty and `v` predecessor-dirty, and only
/// dirty rows re-fire their rules.  [`ImplicationEngine::add_goal_terms`]
/// reuses exactly that machinery for incremental extension: new subterms get
/// fresh (reflexive) rows, the rules of the new composites are seeded once
/// against the already-saturated rows of their children, and the worklist
/// drains the frontier — the closure over the old `V` is never recomputed
/// (by Lemma 9.2 it cannot change).
///
/// ```
/// use ps_base::Universe;
/// use ps_lattice::{parse_equation, parse_term, ImplicationEngine, TermArena};
///
/// let mut universe = Universe::new();
/// let mut arena = TermArena::new();
/// let e = vec![
///     parse_equation("A = A*B", &mut universe, &mut arena).unwrap(),
///     parse_equation("B = B*C", &mut universe, &mut arena).unwrap(),
/// ];
/// // Build once…
/// let mut engine = ImplicationEngine::new(&arena, &e);
/// // …query many goals; V grows on demand, re-saturating only the frontier.
/// let goal = parse_equation("A = A*C", &mut universe, &mut arena).unwrap();
/// let converse = parse_equation("C = C*A", &mut universe, &mut arena).unwrap();
/// assert_eq!(engine.entails_many(&arena, &[goal, converse]), vec![true, false]);
/// let (a, c) = (
///     parse_term("A", &mut universe, &mut arena).unwrap(),
///     parse_term("C", &mut universe, &mut arena).unwrap(),
/// );
/// assert!(engine.leq_goal(&arena, a, c));
/// ```
#[derive(Debug, Clone)]
pub struct ImplicationEngine {
    /// The constraint set `E` the engine was built for.
    equations: Vec<Equation>,
    /// The terms making up `V`, in dense order (append-only).
    terms: Vec<TermId>,
    /// Map from term id to dense index in `terms`.
    dense: HashMap<TermId, usize>,
    /// `succ[i][j]` iff `terms[i] ≤_E terms[j]` is derivable.
    succ: BitMatrix,
    /// Transpose of `succ`: `pred[j][i]` iff `terms[i] ≤_E terms[j]`.
    pred: BitMatrix,
    /// Child → parent-composite occurrence lists.
    occ: Vec<Occurrences>,
    /// Worklist state: terms whose successor / predecessor row changed.
    s_dirty: Vec<bool>,
    p_dirty: Vec<bool>,
    queued: Vec<bool>,
    queue: VecDeque<usize>,
    /// Scratch buffer for row-operation deltas (reused across firings).
    scratch: Vec<usize>,
    /// Scratch buffer for row snapshots taken while processing a dirty term
    /// (reused across worklist pops to avoid per-pop allocations).
    row_buf: Vec<usize>,
    /// Arcs inserted by rule applications (same unit as
    /// [`DerivedOrder::rule_firings`]).
    rule_firings: usize,
    /// Word-parallel row operations executed.
    row_ops: usize,
}

impl ImplicationEngine {
    /// Builds and saturates the engine for the constraint set `equations`.
    ///
    /// `V` starts as the subexpression set of `E`; extend it afterwards with
    /// [`ImplicationEngine::add_goal_terms`] (or implicitly through the
    /// `*_goal` / `*_many` query methods).
    pub fn new(arena: &TermArena, equations: &[Equation]) -> Self {
        let mut engine = ImplicationEngine {
            equations: equations.to_vec(),
            terms: Vec::new(),
            dense: HashMap::new(),
            succ: BitMatrix::new(0),
            pred: BitMatrix::new(0),
            occ: Vec::new(),
            s_dirty: Vec::new(),
            p_dirty: Vec::new(),
            queued: Vec::new(),
            queue: VecDeque::new(),
            scratch: Vec::new(),
            row_buf: Vec::new(),
            rule_firings: 0,
            row_ops: 0,
        };
        let roots: Vec<TermId> = equations.iter().flat_map(|eq| [eq.lhs, eq.rhs]).collect();
        engine.add_terms(arena, &roots);
        // Rule 6: the equations of E, in both directions.
        for eq in equations {
            let (i, j) = (engine.dense[&eq.lhs], engine.dense[&eq.rhs]);
            engine.insert_arc(i, j);
            engine.insert_arc(j, i);
        }
        engine.saturate();
        engine
    }

    /// Builds the engine and immediately extends `V` with `extra_terms` —
    /// the drop-in replacement for [`DerivedOrder::build`].
    pub fn with_goal_terms(
        arena: &TermArena,
        equations: &[Equation],
        extra_terms: &[TermId],
    ) -> Self {
        let mut engine = Self::new(arena, equations);
        engine.add_goal_terms(arena, extra_terms);
        engine
    }

    /// Extends `V` with every subterm of `terms` that is not yet present and
    /// re-saturates incrementally: only the worklist frontier seeded by the
    /// new rows/columns is processed, never the already-saturated closure.
    /// Returns the number of terms actually added (0 is a no-op).
    pub fn add_goal_terms(&mut self, arena: &TermArena, terms: &[TermId]) -> usize {
        let added = self.add_terms(arena, terms);
        if added > 0 {
            self.saturate();
        }
        added
    }

    /// Appends `new_equations` to the constraint set `E` and re-saturates
    /// incrementally: each new equation's subterms join `V`, its rule-6 arcs
    /// are seeded against the already-saturated closure, and the worklist
    /// drains only the affected frontier.  Saturation is monotone in `E`
    /// (adding an equation can only grow `Γ`), so the closure over the old
    /// set is reused, never recomputed — the same discipline
    /// [`ImplicationEngine::add_goal_terms`] applies to `V` growth.
    ///
    /// Returns the number of arcs the extension inserted (the incremental
    /// re-saturation delta, in the same unit as
    /// [`ImplicationEngine::rule_firings`]); `0` means every new equation
    /// was already entailed.  Compare the delta against a fresh
    /// [`ImplicationEngine::new`] over the grown set to see the saving: the
    /// fresh build re-fires every old arc, the extension fires only new
    /// ones.
    pub fn add_equations(&mut self, arena: &TermArena, new_equations: &[Equation]) -> usize {
        let before = self.rule_firings;
        let roots: Vec<TermId> = new_equations
            .iter()
            .flat_map(|eq| [eq.lhs, eq.rhs])
            .collect();
        self.add_terms(arena, &roots);
        for eq in new_equations {
            self.equations.push(*eq);
            let (i, j) = (self.dense[&eq.lhs], self.dense[&eq.rhs]);
            self.insert_arc(i, j);
            self.insert_arc(j, i);
        }
        self.saturate();
        self.rule_firings - before
    }

    /// Retracts equations from `E` (matched modulo orientation) by
    /// rebuilding.  Retraction is non-monotone: an arc contributed by a
    /// removed equation cannot be identified after the fact (other equations
    /// may independently re-derive it), so the only sound path is a fresh
    /// saturation of the remaining set.  The rebuild also keeps `V` minimal
    /// again — goal terms added by earlier queries are dropped together with
    /// every arc that mentions them — and restarts the
    /// [`ImplicationEngine::rule_firings`] / [`ImplicationEngine::row_ops`]
    /// counters with it.
    ///
    /// Returns the number of equations removed; `0` leaves the engine (and
    /// its counters) untouched.
    pub fn retract_equations(&mut self, arena: &TermArena, removed: &[Equation]) -> usize {
        let matches = |eq: &Equation, r: &Equation| {
            (eq.lhs == r.lhs && eq.rhs == r.rhs) || (eq.lhs == r.rhs && eq.rhs == r.lhs)
        };
        let remaining: Vec<Equation> = self
            .equations
            .iter()
            .copied()
            .filter(|eq| !removed.iter().any(|r| matches(eq, r)))
            .collect();
        let removed_count = self.equations.len() - remaining.len();
        if removed_count > 0 {
            *self = ImplicationEngine::new(arena, &remaining);
        }
        removed_count
    }

    /// Whether `lhs ≤_E rhs` is derivable.  Same [`Option`
    /// contract](DerivedOrder::leq) as the reference order: `None` means the
    /// term is outside `V` (asserted in debug builds) — extend `V` first with
    /// [`ImplicationEngine::add_goal_terms`], or use the auto-extending
    /// [`ImplicationEngine::leq_goal`].
    pub fn leq(&self, lhs: TermId, rhs: TermId) -> Option<bool> {
        debug_assert!(
            self.dense.contains_key(&lhs) && self.dense.contains_key(&rhs),
            "ImplicationEngine::leq queried with a term outside V — \
             add goal terms via `add_goal_terms` first"
        );
        let (&i, &j) = (self.dense.get(&lhs)?, self.dense.get(&rhs)?);
        Some(self.succ.get(i, j))
    }

    /// Whether the equation `goal` is entailed (both `≤` directions).  Same
    /// [`Option` contract](DerivedOrder::leq) as [`ImplicationEngine::leq`].
    pub fn entails(&self, goal: Equation) -> Option<bool> {
        Some(self.leq(goal.lhs, goal.rhs)? && self.leq(goal.rhs, goal.lhs)?)
    }

    /// Whether `term` is a member of the current subexpression set `V`.
    pub fn contains_term(&self, term: TermId) -> bool {
        self.dense.contains_key(&term)
    }

    /// Read-only `lhs ≤_E rhs` for *frozen* (shared, immutable) engines.
    ///
    /// Identical to [`ImplicationEngine::leq`] except that a term outside
    /// `V` is an *expected* outcome, not a caller bug: `None` means "outside
    /// the frozen vocabulary" (never "false") and there is no debug
    /// assertion.  Snapshot layers that pre-extend `V` with a batch's goal
    /// subterms use this to answer each goal without `&mut` access; a `None`
    /// surfaces as an outside-vocabulary error instead of silently mutating.
    pub fn leq_frozen(&self, lhs: TermId, rhs: TermId) -> Option<bool> {
        let (&i, &j) = (self.dense.get(&lhs)?, self.dense.get(&rhs)?);
        Some(self.succ.get(i, j))
    }

    /// Read-only entailment for frozen engines: both `≤` directions of
    /// `goal` via [`ImplicationEngine::leq_frozen`].  `None` means a goal
    /// term is outside the frozen vocabulary `V`, never "false".
    pub fn entails_frozen(&self, goal: Equation) -> Option<bool> {
        Some(self.leq_frozen(goal.lhs, goal.rhs)? && self.leq_frozen(goal.rhs, goal.lhs)?)
    }

    /// `lhs ≤_E rhs`, extending `V` with both terms first if necessary.
    pub fn leq_goal(&mut self, arena: &TermArena, lhs: TermId, rhs: TermId) -> bool {
        self.add_goal_terms(arena, &[lhs, rhs]);
        self.leq(lhs, rhs).expect("goal terms were just added to V")
    }

    /// Does `E` entail `goal`, extending `V` with the goal terms first if
    /// necessary?
    pub fn entails_goal(&mut self, arena: &TermArena, goal: Equation) -> bool {
        self.add_goal_terms(arena, &[goal.lhs, goal.rhs]);
        self.entails(goal).expect("goal terms were just added to V")
    }

    /// Batched entailment: one `V` extension covering every goal, then one
    /// lookup per goal.
    pub fn entails_many(&mut self, arena: &TermArena, goals: &[Equation]) -> Vec<bool> {
        let roots: Vec<TermId> = goals.iter().flat_map(|g| [g.lhs, g.rhs]).collect();
        self.add_goal_terms(arena, &roots);
        goals
            .iter()
            .map(|&g| self.entails(g).expect("goal terms were just added to V"))
            .collect()
    }

    /// Batched order queries: one `V` extension covering every pair, then
    /// one lookup per pair.
    pub fn leq_many(&mut self, arena: &TermArena, pairs: &[(TermId, TermId)]) -> Vec<bool> {
        let roots: Vec<TermId> = pairs.iter().flat_map(|&(l, r)| [l, r]).collect();
        self.add_goal_terms(arena, &roots);
        pairs
            .iter()
            .map(|&(l, r)| self.leq(l, r).expect("goal terms were just added to V"))
            .collect()
    }

    /// The constraint set `E` the engine was built for.
    pub fn equations(&self) -> &[Equation] {
        &self.equations
    }

    /// The current subexpression set `V` (dense order, append-only).
    pub fn terms(&self) -> &[TermId] {
        &self.terms
    }

    /// Number of derived arcs in `Γ`.
    pub fn num_arcs(&self) -> usize {
        self.succ.count_ones()
    }

    /// Number of rule firings (arc insertions) performed so far, cumulative
    /// across the initial build and every incremental extension.  Same unit
    /// as [`DerivedOrder::rule_firings`], so `k` independent rebuilds can be
    /// compared against one cached engine answering `k` goals.
    pub fn rule_firings(&self) -> usize {
        self.rule_firings
    }

    /// Number of word-parallel row operations executed so far (each OR /
    /// AND-OR pass over a row pair counts once, whether or not it fired).
    pub fn row_ops(&self) -> usize {
        self.row_ops
    }

    /// All pairs of *atoms* `(A, B)` with `A ≤_E B`; used by the consistency
    /// pipeline of Section 6.2 to compute the closure `E⁺`.
    pub fn atom_consequences(&self, arena: &TermArena) -> Vec<(TermId, TermId)> {
        atom_consequence_pairs(&self.terms, &self.succ, arena)
    }

    // --- Internals -----------------------------------------------------

    /// Appends every not-yet-present subterm of `roots` to `V`, growing the
    /// matrices and occurrence lists, setting reflexive arcs for the new
    /// rows and seeding the rules of the new composites against the
    /// (already saturated) rows of their children.  Does **not** drain the
    /// worklist — callers follow up with [`ImplicationEngine::saturate`].
    fn add_terms(&mut self, arena: &TermArena, roots: &[TermId]) -> usize {
        let old_n = self.terms.len();
        for &root in roots {
            for t in arena.subterms(root) {
                if !self.dense.contains_key(&t) {
                    self.dense.insert(t, self.terms.len());
                    self.terms.push(t);
                }
            }
        }
        let new_n = self.terms.len();
        if new_n == old_n {
            return 0;
        }
        self.succ.grow(new_n);
        self.pred.grow(new_n);
        self.occ.resize_with(new_n, Occurrences::default);
        self.s_dirty.resize(new_n, false);
        self.p_dirty.resize(new_n, false);
        self.queued.resize(new_n, false);

        // Occurrence lists for the new composites.  Children of a new
        // composite are always in V already (subterms are added child-first),
        // but may be *old* terms — which is exactly why the rules below must
        // be seeded explicitly: old children are clean and will never re-fire
        // on their own.
        for i in old_n..new_n {
            match arena.node(self.terms[i]) {
                TermNode::Meet(l, r) => {
                    let (dl, dr) = (self.dense[&l], self.dense[&r]);
                    self.occ[dl].meets.push((i, dr));
                    self.occ[dr].meets.push((i, dl));
                }
                TermNode::Join(l, r) => {
                    let (dl, dr) = (self.dense[&l], self.dense[&r]);
                    self.occ[dl].joins.push((i, dr));
                    self.occ[dr].joins.push((i, dl));
                }
                TermNode::Atom(_) => {}
            }
        }
        // Rule 1 (reflexivity) for the new rows; marks them dirty so
        // transitivity through existing arcs fires when the worklist drains.
        for i in old_n..new_n {
            self.insert_arc(i, i);
        }
        // Seed the frontier: each new composite fires its rules once against
        // the current rows of its children.  The one-premise rules (3 and 5)
        // take both children in a single batched row union, so the composite
        // row is walked once per seeding instead of once per child.
        for i in old_n..new_n {
            match arena.node(self.terms[i]) {
                TermNode::Meet(l, r) => {
                    let (dl, dr) = (self.dense[&l], self.dense[&r]);
                    self.union_succ(&[dl, dr], i); // rule 3 (either child)
                    self.or_and_pred(dl, dr, i); // rule 4
                }
                TermNode::Join(l, r) => {
                    let (dl, dr) = (self.dense[&l], self.dense[&r]);
                    self.or_and_succ(dl, dr, i); // rule 2
                    self.union_pred(&[dl, dr], i); // rule 5 (either child)
                }
                TermNode::Atom(_) => {}
            }
        }
        new_n - old_n
    }

    /// Inserts the arc `terms[u] ≤_E terms[v]`, mirroring it into the
    /// transpose and marking both endpoints dirty.
    fn insert_arc(&mut self, u: usize, v: usize) {
        if self.succ.set(u, v) {
            self.pred.set(v, u);
            self.rule_firings += 1;
            self.mark_s_dirty(u);
            self.mark_p_dirty(v);
        }
    }

    fn mark_s_dirty(&mut self, x: usize) {
        if !self.s_dirty[x] {
            self.s_dirty[x] = true;
            if !self.queued[x] {
                self.queued[x] = true;
                self.queue.push_back(x);
            }
        }
    }

    fn mark_p_dirty(&mut self, x: usize) {
        if !self.p_dirty[x] {
            self.p_dirty[x] = true;
            if !self.queued[x] {
                self.queued[x] = true;
                self.queue.push_back(x);
            }
        }
    }

    /// `succ[dst] |= succ[src]`, mirroring every newly reachable term into
    /// `pred` and marking the affected terms dirty.
    fn or_succ(&mut self, src: usize, dst: usize) {
        self.row_ops += 1;
        let mut delta = std::mem::take(&mut self.scratch);
        delta.clear();
        self.succ.or_row_into_delta(src, dst, &mut delta);
        for &t in &delta {
            self.pred.set(t, dst);
            self.rule_firings += 1;
            self.mark_p_dirty(t);
        }
        if !delta.is_empty() {
            self.mark_s_dirty(dst);
        }
        self.scratch = delta;
    }

    /// `succ[dst] |= succ[s]` for every `s` in `srcs`, batched: one pass
    /// over `dst`'s row, one delta extraction, with mirroring.
    fn union_succ(&mut self, srcs: &[usize], dst: usize) {
        self.row_ops += srcs.len();
        let mut delta = std::mem::take(&mut self.scratch);
        delta.clear();
        self.succ.union_rows_into_delta(srcs, dst, &mut delta);
        for &t in &delta {
            self.pred.set(t, dst);
            self.rule_firings += 1;
            self.mark_p_dirty(t);
        }
        if !delta.is_empty() {
            self.mark_s_dirty(dst);
        }
        self.scratch = delta;
    }

    /// `pred[dst] |= pred[s]` for every `s` in `srcs`, batched, with
    /// mirroring.
    fn union_pred(&mut self, srcs: &[usize], dst: usize) {
        self.row_ops += srcs.len();
        let mut delta = std::mem::take(&mut self.scratch);
        delta.clear();
        self.pred.union_rows_into_delta(srcs, dst, &mut delta);
        for &s in &delta {
            self.succ.set(s, dst);
            self.rule_firings += 1;
            self.mark_s_dirty(s);
        }
        if !delta.is_empty() {
            self.mark_p_dirty(dst);
        }
        self.scratch = delta;
    }

    /// `succ[dst] |= succ[a] & succ[b]` (rule 2), with mirroring.
    fn or_and_succ(&mut self, a: usize, b: usize, dst: usize) {
        self.row_ops += 1;
        let mut delta = std::mem::take(&mut self.scratch);
        delta.clear();
        self.succ.or_and_rows_into_delta(a, b, dst, &mut delta);
        for &t in &delta {
            self.pred.set(t, dst);
            self.rule_firings += 1;
            self.mark_p_dirty(t);
        }
        if !delta.is_empty() {
            self.mark_s_dirty(dst);
        }
        self.scratch = delta;
    }

    /// `pred[dst] |= pred[src]`, mirroring every new predecessor into
    /// `succ` and marking the affected terms dirty.
    fn or_pred(&mut self, src: usize, dst: usize) {
        self.row_ops += 1;
        let mut delta = std::mem::take(&mut self.scratch);
        delta.clear();
        self.pred.or_row_into_delta(src, dst, &mut delta);
        for &s in &delta {
            self.succ.set(s, dst);
            self.rule_firings += 1;
            self.mark_s_dirty(s);
        }
        if !delta.is_empty() {
            self.mark_p_dirty(dst);
        }
        self.scratch = delta;
    }

    /// `pred[dst] |= pred[a] & pred[b]` (rule 4), with mirroring.
    fn or_and_pred(&mut self, a: usize, b: usize, dst: usize) {
        self.row_ops += 1;
        let mut delta = std::mem::take(&mut self.scratch);
        delta.clear();
        self.pred.or_and_rows_into_delta(a, b, dst, &mut delta);
        for &s in &delta {
            self.succ.set(s, dst);
            self.rule_firings += 1;
            self.mark_s_dirty(s);
        }
        if !delta.is_empty() {
            self.mark_p_dirty(dst);
        }
        self.scratch = delta;
    }

    /// Drains the dirty-term worklist to the fixpoint.
    fn saturate(&mut self) {
        while let Some(x) = self.queue.pop_front() {
            self.queued[x] = false;
            if self.s_dirty[x] {
                self.s_dirty[x] = false;
                self.process_succ_dirty(x);
            }
            if self.p_dirty[x] {
                self.p_dirty[x] = false;
                self.process_pred_dirty(x);
            }
        }
        debug_assert_eq!(
            self.rule_firings,
            self.succ.count_ones(),
            "every arc is inserted (and counted) exactly once"
        );
    }

    /// `succ[x]` changed: propagate it backwards along transitivity and
    /// upwards into the composites `x` is a child of (rules 3 and 2).
    fn process_succ_dirty(&mut self, x: usize) {
        // Rule 7: (u, x) and (x, w) give (u, w) — every predecessor of x
        // absorbs x's successor row.  The snapshot is taken into a reused
        // buffer because the row ops below may grow pred[x] itself (any
        // additions re-mark x dirty, so nothing is missed).
        let mut preds = std::mem::take(&mut self.row_buf);
        preds.clear();
        preds.extend(self.pred.iter_row(x));
        for &u in &preds {
            if u != x {
                self.or_succ(x, u);
            }
        }
        self.row_buf = preds;
        // Rule 3: for meets c = x*sib (either child suffices).
        for k in 0..self.occ[x].meets.len() {
            let (c, _sibling) = self.occ[x].meets[k];
            self.or_succ(x, c);
        }
        // Rule 2: for joins c = x+sib (both children required).
        for k in 0..self.occ[x].joins.len() {
            let (c, sibling) = self.occ[x].joins[k];
            self.or_and_succ(x, sibling, c);
        }
    }

    /// `pred[x]` changed: propagate it forwards along transitivity and
    /// upwards into the composites `x` is a child of (rules 5 and 4).
    fn process_pred_dirty(&mut self, x: usize) {
        // Rule 7: (s, x) and (x, v) give (s, v) — every successor of x
        // absorbs x's predecessor row (snapshot into the reused buffer, as
        // in `process_succ_dirty`).
        let mut succs = std::mem::take(&mut self.row_buf);
        succs.clear();
        succs.extend(self.succ.iter_row(x));
        for &v in &succs {
            if v != x {
                self.or_pred(x, v);
            }
        }
        self.row_buf = succs;
        // Rule 5: for joins c = x+sib (either child suffices).
        for k in 0..self.occ[x].joins.len() {
            let (c, _sibling) = self.occ[x].joins[k];
            self.or_pred(x, c);
        }
        // Rule 4: for meets c = x*sib (both children required).
        for k in 0..self.occ[x].meets.len() {
            let (c, sibling) = self.occ[x].meets[k];
            self.or_and_pred(x, sibling, c);
        }
    }
}

/// Batched convenience over the reference engines: builds one
/// [`DerivedOrder`] whose `V` covers every goal and answers them all.
/// (The cached counterpart is [`ImplicationEngine::entails_many`].)
pub fn entails_many(
    arena: &TermArena,
    equations: &[Equation],
    goals: &[Equation],
    algorithm: Algorithm,
) -> Vec<bool> {
    let extra: Vec<TermId> = goals.iter().flat_map(|g| [g.lhs, g.rhs]).collect();
    let order = DerivedOrder::build(arena, equations, &extra, algorithm);
    goals
        .iter()
        .map(|&g| {
            order
                .entails(g)
                .expect("goal terms are in V by construction")
        })
        .collect()
}

/// Batched convenience over the reference engines for `≤` queries.  (The
/// cached counterpart is [`ImplicationEngine::leq_many`].)
pub fn leq_many(
    arena: &TermArena,
    equations: &[Equation],
    pairs: &[(TermId, TermId)],
    algorithm: Algorithm,
) -> Vec<bool> {
    let extra: Vec<TermId> = pairs.iter().flat_map(|&(l, r)| [l, r]).collect();
    let order = DerivedOrder::build(arena, equations, &extra, algorithm);
    pairs
        .iter()
        .map(|&(l, r)| {
            order
                .leq(l, r)
                .expect("goal terms are in V by construction")
        })
        .collect()
}

/// Convenience: does `E` entail the equation `goal` (the uniform word
/// problem / PD implication, Theorem 8)?
pub fn entails(
    arena: &TermArena,
    equations: &[Equation],
    goal: Equation,
    algorithm: Algorithm,
) -> bool {
    DerivedOrder::build(arena, equations, &[goal.lhs, goal.rhs], algorithm)
        .entails(goal)
        .expect("goal terms are in V by construction")
}

/// Convenience: does `E` entail `lhs ≤ rhs`?
pub fn entails_leq(
    arena: &TermArena,
    equations: &[Equation],
    lhs: TermId,
    rhs: TermId,
    algorithm: Algorithm,
) -> bool {
    DerivedOrder::build(arena, equations, &[lhs, rhs], algorithm)
        .leq(lhs, rhs)
        .expect("goal terms are in V by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{free_order, parse_equation, parse_term};
    use ps_base::Universe;

    struct Fixture {
        universe: Universe,
        arena: TermArena,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                universe: Universe::new(),
                arena: TermArena::new(),
            }
        }
        fn eq(&mut self, s: &str) -> Equation {
            parse_equation(s, &mut self.universe, &mut self.arena).unwrap()
        }
        fn t(&mut self, s: &str) -> TermId {
            parse_term(s, &mut self.universe, &mut self.arena).unwrap()
        }
    }

    const BOTH: [Algorithm; 2] = [Algorithm::NaiveFixpoint, Algorithm::Worklist];

    #[test]
    fn frozen_queries_agree_with_mutable_and_report_outside_v() {
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B"), f.eq("B=B*C")];
        let goal = f.eq("A=A*C");
        let non_goal = f.eq("C=C*A");
        let outside = f.eq("A=A*D"); // D never added to V.
        let mut engine = ImplicationEngine::new(&f.arena, &e);
        engine.add_goal_terms(&f.arena, &[goal.lhs, goal.rhs, non_goal.lhs, non_goal.rhs]);
        let firings = engine.rule_firings();
        // Read-only path answers pre-extended goals without &mut…
        let frozen: &ImplicationEngine = &engine;
        assert_eq!(frozen.entails_frozen(goal), Some(true));
        assert_eq!(frozen.entails_frozen(non_goal), Some(false));
        assert_eq!(frozen.leq_frozen(goal.lhs, goal.rhs), Some(true));
        // …reports outside-V as None (never false, and no debug assert)…
        assert_eq!(frozen.entails_frozen(outside), None);
        assert_eq!(frozen.leq_frozen(outside.lhs, outside.rhs), None);
        // …and fires no rules.
        assert_eq!(engine.rule_firings(), firings);
        // A saturated engine is shareable across threads.
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        assert_send_sync(&engine);
    }

    #[test]
    fn empty_e_entails_exactly_the_identities() {
        let mut f = Fixture::new();
        let identity = f.eq("A*(A+B)=A");
        let non_identity = f.eq("A*(B+C)=(A*B)+(A*C)");
        for algo in BOTH {
            assert!(entails(&f.arena, &[], identity, algo));
            assert!(!entails(&f.arena, &[], non_identity, algo));
        }
    }

    #[test]
    fn fd_style_transitivity() {
        // A=A*B (A→B) and B=B*C (B→C) entail A=A*C (A→C).
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B"), f.eq("B=B*C")];
        let goal = f.eq("A=A*C");
        let non_goal = f.eq("C=C*A");
        for algo in BOTH {
            assert!(entails(&f.arena, &e, goal, algo));
            assert!(!entails(&f.arena, &e, non_goal, algo));
        }
    }

    #[test]
    fn fpd_duality_meet_and_join_forms() {
        // A = A*B is equivalent to B = B+A: each entails the other.
        let mut f = Fixture::new();
        let meet_form = f.eq("A=A*B");
        let join_form = f.eq("B=B+A");
        for algo in BOTH {
            assert!(entails(&f.arena, &[meet_form], join_form, algo));
            assert!(entails(&f.arena, &[join_form], meet_form, algo));
        }
    }

    #[test]
    fn sum_dependency_consequences() {
        // From C = A + B we get A ≤ C and B ≤ C, i.e. A = A*C and B = B*C.
        let mut f = Fixture::new();
        let e = vec![f.eq("C=A+B")];
        let a_leq_c = f.eq("A=A*C");
        let b_leq_c = f.eq("B=B*C");
        let c_leq_a = f.eq("C=C*A");
        for algo in BOTH {
            assert!(entails(&f.arena, &e, a_leq_c, algo));
            assert!(entails(&f.arena, &e, b_leq_c, algo));
            assert!(!entails(&f.arena, &e, c_leq_a, algo));
        }
    }

    #[test]
    fn example_f_product_equation_decomposition() {
        // Example f: X = Y*Z is equivalent to {X = X*(Y*Z), Y*Z = Y*Z*X}.
        let mut f = Fixture::new();
        let original = f.eq("X=Y*Z");
        let dec1 = f.eq("X=X*(Y*Z)");
        let dec2 = f.eq("Y*Z=Y*Z*X");
        for algo in BOTH {
            assert!(entails(&f.arena, &[original], dec1, algo));
            assert!(entails(&f.arena, &[original], dec2, algo));
            assert!(entails(&f.arena, &[dec1, dec2], original, algo));
        }
    }

    #[test]
    fn theorem4_remark_sum_equation_decomposes_into_fpds() {
        // C = A+B entails A=A*C, B=B*C and C=C*(A+B);
        // and conversely {A=A*C, B=B*C, C=C*(A+B)} entails C=A+B.
        let mut f = Fixture::new();
        let sum_eq = f.eq("C=A+B");
        let fpd_a = f.eq("A=A*C");
        let fpd_b = f.eq("B=B*C");
        let c_below = f.eq("C=C*(A+B)");
        for algo in BOTH {
            assert!(entails(&f.arena, &[sum_eq], fpd_a, algo));
            assert!(entails(&f.arena, &[sum_eq], fpd_b, algo));
            assert!(entails(&f.arena, &[sum_eq], c_below, algo));
            assert!(entails(&f.arena, &[fpd_a, fpd_b, c_below], sum_eq, algo));
        }
    }

    #[test]
    fn equations_propagate_through_contexts() {
        // From A = B we should get A+C = B+C and A*C = B*C.
        let mut f = Fixture::new();
        let e = vec![f.eq("A=B")];
        let joins = f.eq("A+C=B+C");
        let meets = f.eq("A*C=B*C");
        for algo in BOTH {
            assert!(entails(&f.arena, &e, joins, algo));
            assert!(entails(&f.arena, &e, meets, algo));
        }
    }

    #[test]
    fn naive_and_worklist_agree_on_random_style_inputs() {
        let mut f = Fixture::new();
        let e = vec![
            f.eq("A=A*B"),
            f.eq("C=B+D"),
            f.eq("D=D*(A+C)"),
            f.eq("E=A*C"),
        ];
        let goals = vec![
            f.eq("A=A*C"),
            f.eq("B=B*C"),
            f.eq("D=D*C"),
            f.eq("E=E*B"),
            f.eq("A+D=C+A"),
            f.eq("E=A"),
        ];
        for goal in goals {
            let naive = entails(&f.arena, &e, goal, Algorithm::NaiveFixpoint);
            let fast = entails(&f.arena, &e, goal, Algorithm::Worklist);
            assert_eq!(naive, fast, "{}", goal.display(&f.arena, &f.universe));
        }
    }

    #[test]
    fn derived_order_exposes_atom_consequences() {
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B"), f.eq("B=B*C")];
        let a = f.t("A");
        let b = f.t("B");
        let c = f.t("C");
        let order = DerivedOrder::build(&f.arena, &e, &[a, b, c], Algorithm::Worklist);
        let consequences = order.atom_consequences(&f.arena);
        assert!(consequences.contains(&(a, b)));
        assert!(consequences.contains(&(a, c)));
        assert!(consequences.contains(&(b, c)));
        assert!(!consequences.contains(&(c, a)));
        assert!(order.num_arcs() > 0);
        assert!(order.work() > 0);
        assert!(!order.render(&f.arena, &f.universe).is_empty());
        assert_eq!(order.leq(a, b), Some(true));
        assert_eq!(order.leq(c, a), Some(false));
    }

    #[test]
    fn entailment_is_sound_with_respect_to_the_free_order() {
        // With E = ∅, ≤_E coincides with ≤_id on the terms of V.
        let mut f = Fixture::new();
        let pairs = [
            ("A*(B+C)", "(A*B)+(A*C)"),
            ("(A*B)+(A*C)", "A*(B+C)"),
            ("A*B*C", "A+B"),
            ("A+B", "A*B*C"),
            ("(A+B)*(A+C)", "A+(B*C)"),
            ("A+(B*C)", "(A+B)*(A+C)"),
        ];
        for (l, r) in pairs {
            let lt = f.t(l);
            let rt = f.t(r);
            for algo in BOTH {
                assert_eq!(
                    entails_leq(&f.arena, &[], lt, rt, algo),
                    free_order::leq_id(&f.arena, lt, rt),
                    "{l} <= {r}"
                );
            }
        }
    }

    #[test]
    fn goal_terms_outside_v_are_detectable() {
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B")];
        let a = f.t("A");
        let stranger = f.t("X+Y");
        let order = DerivedOrder::build(&f.arena, &e, &[], Algorithm::Worklist);
        assert!(order.contains_term(a));
        assert!(!order.contains_term(stranger));
        let engine = ImplicationEngine::new(&f.arena, &e);
        assert!(engine.contains_term(a));
        assert!(!engine.contains_term(stranger));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside V")]
    fn leq_on_foreign_terms_panics_in_debug_builds() {
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B")];
        let a = f.t("A");
        let stranger = f.t("X+Y");
        let order = DerivedOrder::build(&f.arena, &e, &[], Algorithm::Worklist);
        let _ = order.leq(a, stranger);
    }

    #[test]
    fn engine_agrees_with_references_on_the_fixture_suite() {
        let mut f = Fixture::new();
        let e = vec![
            f.eq("A=A*B"),
            f.eq("C=B+D"),
            f.eq("D=D*(A+C)"),
            f.eq("E=A*C"),
        ];
        let goals = vec![
            f.eq("A=A*C"),
            f.eq("B=B*C"),
            f.eq("D=D*C"),
            f.eq("E=E*B"),
            f.eq("A+D=C+A"),
            f.eq("E=A"),
            f.eq("A*(A+B)=A"),
        ];
        let mut engine = ImplicationEngine::new(&f.arena, &e);
        for &goal in &goals {
            let reference = entails(&f.arena, &e, goal, Algorithm::NaiveFixpoint);
            assert_eq!(
                engine.entails_goal(&f.arena, goal),
                reference,
                "{}",
                goal.display(&f.arena, &f.universe)
            );
        }
        // Batched queries agree with one-by-one queries.
        let batched = entails_many(&f.arena, &e, &goals, Algorithm::Worklist);
        let mut engine2 = ImplicationEngine::new(&f.arena, &e);
        assert_eq!(engine2.entails_many(&f.arena, &goals), batched);
    }

    #[test]
    fn incremental_extension_matches_a_fresh_build() {
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B"), f.eq("B=B*C")];
        let goal1 = f.eq("A=A*C");
        let goal2 = f.eq("C=C*(A+D)");
        // Incremental: build on E alone, extend twice.
        let mut incremental = ImplicationEngine::new(&f.arena, &e);
        let build_firings = incremental.rule_firings();
        assert!(incremental.entails_goal(&f.arena, goal1));
        assert!(!incremental.entails_goal(&f.arena, goal2));
        // Fresh: one engine with all goal terms from the start.
        let fresh = ImplicationEngine::with_goal_terms(
            &f.arena,
            &e,
            &[goal1.lhs, goal1.rhs, goal2.lhs, goal2.rhs],
        );
        assert_eq!(incremental.num_arcs(), fresh.num_arcs());
        assert_eq!(incremental.terms().len(), fresh.terms().len());
        // Every arc is inserted exactly once, so the cumulative firing count
        // matches the fresh build and each extension only paid its delta.
        assert_eq!(incremental.rule_firings(), fresh.rule_firings());
        assert!(build_firings < incremental.rule_firings());
        assert!(incremental.row_ops() > 0);
        // Re-adding known terms is a no-op.
        let firings_before = incremental.rule_firings();
        assert_eq!(incremental.add_goal_terms(&f.arena, &[goal1.lhs]), 0);
        assert_eq!(incremental.rule_firings(), firings_before);
    }

    #[test]
    fn engine_exposes_atom_consequences_and_metadata() {
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B"), f.eq("B=B*C")];
        let a = f.t("A");
        let b = f.t("B");
        let c = f.t("C");
        let mut engine = ImplicationEngine::new(&f.arena, &e);
        engine.add_goal_terms(&f.arena, &[a, b, c]);
        let consequences = engine.atom_consequences(&f.arena);
        assert!(consequences.contains(&(a, b)));
        assert!(consequences.contains(&(a, c)));
        assert!(consequences.contains(&(b, c)));
        assert!(!consequences.contains(&(c, a)));
        assert_eq!(engine.equations(), &e[..]);
        assert_eq!(
            engine.leq_many(&f.arena, &[(a, c), (c, a)]),
            vec![true, false]
        );
        // Counters line up with the derived arcs.
        assert_eq!(engine.rule_firings(), engine.num_arcs());
        // And agree with the reference order over the same V.
        let order = DerivedOrder::build(&f.arena, &e, &[a, b, c], Algorithm::Worklist);
        assert_eq!(order.num_arcs(), engine.num_arcs());
        assert_eq!(order.rule_firings(), order.num_arcs());
    }

    #[test]
    fn add_equations_matches_a_fresh_build_and_pays_only_the_delta() {
        let mut f = Fixture::new();
        let base = vec![f.eq("A=A*B"), f.eq("C=A+B")];
        let extra = vec![f.eq("B=B*D"), f.eq("D=D*E")];
        let goals = vec![
            f.eq("A=A*D"), // needs both extras on top of the base.
            f.eq("A=A*E"), // transitivity through the extras.
            f.eq("A+B=C"), // already held before the extension.
            f.eq("E=E*A"), // never holds.
        ];

        let mut incremental = ImplicationEngine::new(&f.arena, &base);
        // Warm the engine with goal terms first, as a live session would.
        let warm_verdicts = incremental.entails_many(&f.arena, &goals);
        assert_eq!(warm_verdicts, vec![false, false, true, false]);
        let build_firings = incremental.rule_firings();
        let delta = incremental.add_equations(&f.arena, &extra);
        assert_eq!(incremental.rule_firings(), build_firings + delta);

        let mut grown = base.clone();
        grown.extend_from_slice(&extra);
        let mut fresh = ImplicationEngine::new(&f.arena, &grown);
        assert_eq!(
            incremental.entails_many(&f.arena, &goals),
            fresh.entails_many(&f.arena, &goals),
        );
        assert_eq!(incremental.equations(), &grown[..]);
        // The extension pays strictly less than the fresh build, which
        // re-fires every old arc on top of the delta.
        assert!(
            delta < fresh.rule_firings(),
            "extension delta {delta} must undercut the fresh build's {}",
            fresh.rule_firings()
        );
        // An already-entailed equation inserts nothing new.
        let noop = f.eq("A*B=A");
        assert_eq!(incremental.add_equations(&f.arena, &[noop]), 0);
    }

    #[test]
    fn retract_equations_rebuilds_to_the_remaining_set() {
        let mut f = Fixture::new();
        let e = vec![f.eq("A=A*B"), f.eq("B=B*C"), f.eq("D=A+C")];
        let goal_through_b = f.eq("A=A*C");
        let mut engine = ImplicationEngine::new(&f.arena, &e);
        assert!(engine.entails_goal(&f.arena, goal_through_b));

        // Retract matches modulo orientation and drops goal-term growth.
        let flipped = Equation::new(e[1].rhs, e[1].lhs);
        assert_eq!(engine.retract_equations(&f.arena, &[flipped]), 1);
        assert_eq!(engine.equations(), &[e[0], e[2]][..]);
        let mut reference = ImplicationEngine::new(&f.arena, &[e[0], e[2]]);
        assert_eq!(engine.num_arcs(), reference.num_arcs());
        assert!(!engine.entails_goal(&f.arena, goal_through_b));
        assert!(!reference.entails_goal(&f.arena, goal_through_b));

        // Retracting something absent is a free no-op.
        let absent = f.eq("A=A*E");
        let arcs = engine.num_arcs();
        assert_eq!(engine.retract_equations(&f.arena, &[absent]), 0);
        assert_eq!(engine.num_arcs(), arcs);
    }
}
