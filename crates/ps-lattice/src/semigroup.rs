//! The uniform word problem for idempotent commutative semigroups.
//!
//! Section 5.3 of the paper observes that implication of functional
//! dependencies is exactly the uniform word problem for *idempotent
//! commutative semigroups* (structures with a single associative,
//! commutative, idempotent operation `*`): the FD `X → Y` corresponds to the
//! equation `X = X·Y`, and a word over such a semigroup is determined by the
//! **set** of generators occurring in it.  Words are therefore represented
//! here as non-empty [`AttrSet`]s, and the word problem is solved by the
//! same closure computation that solves FD implication (Armstrong
//! closure), which is also how the correspondence is exercised in the
//! benchmarks (experiment E2).

use ps_base::AttrSet;

/// An equation `lhs = rhs` between two words of an idempotent commutative
/// semigroup, each word written as the set of generators it multiplies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordEquation {
    /// Generators of the left word.
    pub lhs: AttrSet,
    /// Generators of the right word.
    pub rhs: AttrSet,
}

impl WordEquation {
    /// Creates the equation `lhs = rhs`.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        WordEquation { lhs, rhs }
    }

    /// The FD-style inequality `sub ≤ sup` (i.e. `sub = sub · sup`), the
    /// semigroup form of the FD `sub → sup`.
    pub fn from_fd(sub: AttrSet, sup: AttrSet) -> Self {
        WordEquation {
            lhs: sub.clone(),
            rhs: sub.union(&sup),
        }
    }
}

/// Computes the closure of `start` under the equations: the largest word `W`
/// such that `start = W` is derivable — equivalently the Armstrong closure
/// of `start` under the FDs `{lhs → rhs, rhs → lhs}` for each equation.
pub fn word_closure(equations: &[WordEquation], start: &AttrSet) -> AttrSet {
    let mut closure = start.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for eq in equations {
            if eq.lhs.is_subset(&closure) && !eq.rhs.is_subset(&closure) {
                closure = closure.union(&eq.rhs);
                changed = true;
            }
            if eq.rhs.is_subset(&closure) && !eq.lhs.is_subset(&closure) {
                closure = closure.union(&eq.lhs);
                changed = true;
            }
        }
    }
    closure
}

/// Decides the uniform word problem: does every idempotent commutative
/// semigroup (with the attributes as constants) satisfying `equations` also
/// satisfy `goal`?
///
/// Two words are equal under `E` iff each side's generators are contained in
/// the closure of the other side.
pub fn entails(equations: &[WordEquation], goal: &WordEquation) -> bool {
    let lhs_closure = word_closure(equations, &goal.lhs);
    let rhs_closure = word_closure(equations, &goal.rhs);
    goal.rhs.is_subset(&lhs_closure) && goal.lhs.is_subset(&rhs_closure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_base::Universe;

    fn setup() -> (Universe, Vec<ps_base::Attribute>) {
        let mut u = Universe::new();
        let attrs = u.attrs(["A", "B", "C", "D"]);
        (u, attrs)
    }

    fn set(attrs: &[ps_base::Attribute]) -> AttrSet {
        attrs.iter().copied().collect()
    }

    #[test]
    fn closure_of_fd_chain() {
        let (_, a) = setup();
        // A→B, B→C as word equations.
        let eqs = vec![
            WordEquation::from_fd(set(&[a[0]]), set(&[a[1]])),
            WordEquation::from_fd(set(&[a[1]]), set(&[a[2]])),
        ];
        let closure = word_closure(&eqs, &set(&[a[0]]));
        assert_eq!(closure, set(&[a[0], a[1], a[2]]));
        let closure_b = word_closure(&eqs, &set(&[a[1]]));
        assert_eq!(closure_b, set(&[a[1], a[2]]));
    }

    #[test]
    fn entailment_of_transitive_fd() {
        let (_, a) = setup();
        let eqs = vec![
            WordEquation::from_fd(set(&[a[0]]), set(&[a[1]])),
            WordEquation::from_fd(set(&[a[1]]), set(&[a[2]])),
        ];
        // A = A·C should follow; C = C·A should not.
        assert!(entails(
            &eqs,
            &WordEquation::from_fd(set(&[a[0]]), set(&[a[2]]))
        ));
        assert!(!entails(
            &eqs,
            &WordEquation::from_fd(set(&[a[2]]), set(&[a[0]]))
        ));
    }

    #[test]
    fn symmetric_equations_merge_both_ways() {
        let (_, a) = setup();
        // AB = CD makes the closures of AB and CD equal.
        let eqs = vec![WordEquation::new(set(&[a[0], a[1]]), set(&[a[2], a[3]]))];
        let closure = word_closure(&eqs, &set(&[a[0], a[1]]));
        assert!(set(&[a[2], a[3]]).is_subset(&closure));
        let closure_rev = word_closure(&eqs, &set(&[a[2], a[3]]));
        assert!(set(&[a[0], a[1]]).is_subset(&closure_rev));
        // But A alone does not trigger the equation.
        assert_eq!(word_closure(&eqs, &set(&[a[0]])), set(&[a[0]]));
    }

    #[test]
    fn goal_with_compound_sides() {
        let (_, a) = setup();
        // A→BC entails AB = A and A = A·C.
        let eqs = vec![WordEquation::from_fd(set(&[a[0]]), set(&[a[1], a[2]]))];
        assert!(entails(
            &eqs,
            &WordEquation::new(set(&[a[0], a[1]]), set(&[a[0]]))
        ));
        assert!(entails(
            &eqs,
            &WordEquation::new(set(&[a[0]]), set(&[a[0], a[2]]))
        ));
        assert!(!entails(
            &eqs,
            &WordEquation::new(set(&[a[1]]), set(&[a[1], a[2]]))
        ));
    }

    #[test]
    fn trivial_goals_hold_without_equations() {
        let (_, a) = setup();
        assert!(entails(&[], &WordEquation::new(set(&[a[0]]), set(&[a[0]]))));
        assert!(!entails(
            &[],
            &WordEquation::new(set(&[a[0]]), set(&[a[1]]))
        ));
    }
}
