//! A compact square bit matrix.
//!
//! Algorithm `ALG` (Section 5.2) maintains a set `Γ` of directed arcs over
//! the subexpression set `V`; the matrix below stores those arcs with one
//! bit per pair, which keeps the `O(n⁴)` fixpoint loops cache-friendly.
//!
//! # Hot-path discipline
//!
//! The saturation engine ([`crate::ImplicationEngine`]) spends almost all of
//! its time in the three delta row operations ([`BitMatrix::or_row_into_delta`],
//! [`BitMatrix::or_and_rows_into_delta`], [`BitMatrix::union_rows_into_delta`]).
//! They are written to three rules, measured by the `BENCH_*.json` trajectory
//! (see `docs/BENCHMARKS.md`):
//!
//! 1. **word-parallel**: 64 arcs move per `u64` OR / AND-OR — per-bit work
//!    happens only for *newly set* bits, which must be reported in the delta;
//! 2. **split-borrow slices**: source and destination rows are disjoint
//!    sub-slices of the backing store, so the inner loops run on plain slice
//!    iterators with no per-word bounds checks;
//! 3. **chunked scanning**: words are scanned [`CHUNK`] at a time with a
//!    single "any new bit?" test per chunk, because in the saturation steady
//!    state almost every chunk is already subsumed and the test is the only
//!    work done.
//!
//! The straightforward per-bit loops are kept as `*_per_bit` reference
//! implementations; property tests pin the optimized paths to them.
//!
//! # The tail invariant
//!
//! When `n` is not a multiple of 64, the last word of each row has `64 - n%64`
//! spare high bits.  Every mutating operation preserves the invariant that
//! those tail bits are **zero**: [`BitMatrix::set`] is bounds-asserted,
//! [`BitMatrix::grow`] only ever appends zeroed storage, and the row
//! operations can only copy zeros into a tail.  The invariant is what lets
//! [`BitMatrix::count_ones`] and the delta extraction loops skip last-word
//! masking; [`BitMatrix::debug_validate_tails`] checks it in tests.

/// Words scanned per "any new bit?" test in the delta row operations.
const CHUNK: usize = 4;

/// A dense `n × n` bit matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

/// Splits `bits` into the row `src` (shared) and the row `dst` (mutable).
/// The rows must be distinct; the backing ranges are then disjoint.
fn two_rows_mut(bits: &mut [u64], w: usize, src: usize, dst: usize) -> (&[u64], &mut [u64]) {
    debug_assert_ne!(src, dst);
    let (s0, d0) = (src * w, dst * w);
    if s0 < d0 {
        let (head, tail) = bits.split_at_mut(d0);
        (&head[s0..s0 + w], &mut tail[..w])
    } else {
        let (head, tail) = bits.split_at_mut(s0);
        (&tail[..w], &mut head[d0..d0 + w])
    }
}

/// Appends the column indices of the set bits of `word` (whose first column
/// is `base`) to `delta`.
#[inline]
fn push_set_bits(mut word: u64, base: usize, delta: &mut Vec<usize>) {
    while word != 0 {
        let bit = word.trailing_zeros() as usize;
        word &= word - 1;
        delta.push(base + bit);
    }
}

impl BitMatrix {
    /// Creates an all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// The dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads bit `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.n && col < self.n);
        let word = self.bits[row * self.words_per_row + col / 64];
        (word >> (col % 64)) & 1 == 1
    }

    /// Sets bit `(row, col)`; returns `true` if it was previously clear.
    ///
    /// `col` must be `< dim()` — an out-of-range column would land in a
    /// last-word tail bit and break the tail invariant, so it is rejected in
    /// every build profile (not just debug).
    pub fn set(&mut self, row: usize, col: usize) -> bool {
        assert!(
            row < self.n && col < self.n,
            "BitMatrix::set({row}, {col}) out of bounds for dim {}",
            self.n
        );
        let idx = row * self.words_per_row + col / 64;
        let mask = 1u64 << (col % 64);
        let was_clear = self.bits[idx] & mask == 0;
        self.bits[idx] |= mask;
        was_clear
    }

    /// Number of set bits in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Grows the matrix to `new_n × new_n`, preserving every existing bit.
    ///
    /// New rows and columns start all-zero.  Shrinking is not supported;
    /// `new_n < dim()` panics.
    pub fn grow(&mut self, new_n: usize) {
        assert!(new_n >= self.n, "BitMatrix::grow cannot shrink");
        if new_n == self.n {
            return;
        }
        let new_words_per_row = new_n.div_ceil(64);
        if new_words_per_row == self.words_per_row {
            // Same row stride: the new columns live in already-present (and
            // zero, by the tail invariant) word tails, so appending zeroed
            // rows suffices — no full matrix copy on the incremental-
            // extension hot path.
            self.bits.resize(new_n * new_words_per_row, 0);
        } else {
            let mut new_bits = vec![0u64; new_n * new_words_per_row];
            for row in 0..self.n {
                let src = row * self.words_per_row;
                let dst = row * new_words_per_row;
                new_bits[dst..dst + self.words_per_row]
                    .copy_from_slice(&self.bits[src..src + self.words_per_row]);
            }
            self.words_per_row = new_words_per_row;
            self.bits = new_bits;
        }
        self.n = new_n;
    }

    /// ORs row `src` into row `dst`; returns `true` if `dst` changed.
    pub fn or_row_into(&mut self, src: usize, dst: usize) -> bool {
        if src == dst {
            return false;
        }
        let (src_row, dst_row) = two_rows_mut(&mut self.bits, self.words_per_row, src, dst);
        let mut changed = false;
        for (d, &s) in dst_row.iter_mut().zip(src_row) {
            let merged = *d | s;
            changed |= merged != *d;
            *d = merged;
        }
        changed
    }

    /// ORs row `src` into row `dst`, appending the column index of every bit
    /// that became set to `delta`.  Returns `true` if `dst` changed.
    ///
    /// The saturation engine uses the delta to mirror new arcs into the
    /// transposed matrix and to seed its worklist.
    pub fn or_row_into_delta(&mut self, src: usize, dst: usize, delta: &mut Vec<usize>) -> bool {
        if src == dst {
            return false;
        }
        let w = self.words_per_row;
        let (src_row, dst_row) = two_rows_mut(&mut self.bits, w, src, dst);
        let mut changed = false;
        let mut base = 0usize;
        let mut dst_chunks = dst_row.chunks_exact_mut(CHUNK);
        let mut src_chunks = src_row.chunks_exact(CHUNK);
        for (dc, sc) in dst_chunks.by_ref().zip(src_chunks.by_ref()) {
            let mut any = 0u64;
            for (d, &s) in dc.iter().zip(sc) {
                any |= s & !d;
            }
            if any != 0 {
                changed = true;
                for (j, (d, &s)) in dc.iter_mut().zip(sc).enumerate() {
                    push_set_bits(s & !*d, (base + j) * 64, delta);
                    *d |= s;
                }
            }
            base += CHUNK;
        }
        for (j, (d, &s)) in dst_chunks
            .into_remainder()
            .iter_mut()
            .zip(src_chunks.remainder())
            .enumerate()
        {
            let new_bits = s & !*d;
            if new_bits != 0 {
                changed = true;
                push_set_bits(new_bits, (base + j) * 64, delta);
                *d |= s;
            }
        }
        changed
    }

    /// ORs the intersection of rows `a` and `b` into row `dst`
    /// (`dst |= a & b`), appending newly set column indices to `delta`.
    /// Returns `true` if `dst` changed.
    ///
    /// This is the word-parallel form of the two-premise rules of algorithm
    /// ALG (rules 2 and 4): the conclusion row receives every element reached
    /// by *both* children at once.  When `dst` coincides with `a` or `b` the
    /// intersection is already contained in `dst` and the call is a no-op.
    pub fn or_and_rows_into_delta(
        &mut self,
        a: usize,
        b: usize,
        dst: usize,
        delta: &mut Vec<usize>,
    ) -> bool {
        if dst == a || dst == b {
            // a & b ⊆ dst already.
            return false;
        }
        if a == b {
            return self.or_row_into_delta(a, dst, delta);
        }
        let w = self.words_per_row;
        let d0 = dst * w;
        let (head, rest) = self.bits.split_at_mut(d0);
        let (dst_row, tail) = rest.split_at_mut(w);
        let row = |idx: usize| -> &[u64] {
            let start = idx * w;
            if start < d0 {
                &head[start..start + w]
            } else {
                &tail[start - d0 - w..start - d0 - w + w]
            }
        };
        let (a_row, b_row) = (row(a), row(b));
        let mut changed = false;
        let mut base = 0usize;
        let mut dst_chunks = dst_row.chunks_exact_mut(CHUNK);
        let mut a_chunks = a_row.chunks_exact(CHUNK);
        let mut b_chunks = b_row.chunks_exact(CHUNK);
        for ((dc, ac), bc) in dst_chunks
            .by_ref()
            .zip(a_chunks.by_ref())
            .zip(b_chunks.by_ref())
        {
            let mut any = 0u64;
            for ((d, &x), &y) in dc.iter().zip(ac).zip(bc) {
                any |= (x & y) & !d;
            }
            if any != 0 {
                changed = true;
                for (j, ((d, &x), &y)) in dc.iter_mut().zip(ac).zip(bc).enumerate() {
                    let s = x & y;
                    push_set_bits(s & !*d, (base + j) * 64, delta);
                    *d |= s;
                }
            }
            base += CHUNK;
        }
        for (j, ((d, &x), &y)) in dst_chunks
            .into_remainder()
            .iter_mut()
            .zip(a_chunks.remainder())
            .zip(b_chunks.remainder())
            .enumerate()
        {
            let s = x & y;
            let new_bits = s & !*d;
            if new_bits != 0 {
                changed = true;
                push_set_bits(new_bits, (base + j) * 64, delta);
                *d |= s;
            }
        }
        changed
    }

    /// ORs every row of `srcs` into row `dst` in one pass (row-range
    /// batching), appending newly set column indices to `delta`.  Returns
    /// `true` if `dst` changed.
    ///
    /// Equivalent to calling [`BitMatrix::or_row_into_delta`] once per
    /// source, but the destination row is walked (and its delta extracted)
    /// only once however many sources there are; sources equal to `dst`
    /// contribute nothing and are skipped.
    pub fn union_rows_into_delta(
        &mut self,
        srcs: &[usize],
        dst: usize,
        delta: &mut Vec<usize>,
    ) -> bool {
        let w = self.words_per_row;
        let d0 = dst * w;
        let (head, rest) = self.bits.split_at_mut(d0);
        let (dst_row, tail) = rest.split_at_mut(w);
        let row = |idx: usize| -> &[u64] {
            let start = idx * w;
            if start < d0 {
                &head[start..start + w]
            } else {
                &tail[start - d0 - w..start - d0 - w + w]
            }
        };
        let mut changed = false;
        let mut k = 0usize;
        while k < w {
            let end = (k + CHUNK).min(w);
            let mut acc = [0u64; CHUNK];
            for &src in srcs {
                if src == dst {
                    continue;
                }
                let src_row = row(src);
                for (a, &s) in acc.iter_mut().zip(&src_row[k..end]) {
                    *a |= s;
                }
            }
            let dc = &mut dst_row[k..end];
            let mut any = 0u64;
            for (d, &s) in dc.iter().zip(&acc) {
                any |= s & !d;
            }
            if any != 0 {
                changed = true;
                for (j, (d, &s)) in dc.iter_mut().zip(&acc).enumerate() {
                    push_set_bits(s & !*d, (k + j) * 64, delta);
                    *d |= s;
                }
            }
            k = end;
        }
        changed
    }

    /// Per-bit reference for [`BitMatrix::or_row_into_delta`]: the naive
    /// column loop over [`BitMatrix::get`]/[`BitMatrix::set`].  Kept (like
    /// `chase_fds_naive` and `Algorithm::NaiveFixpoint`) as the pinned
    /// reference the optimized word-parallel path is property-tested and
    /// benchmarked against.
    pub fn or_row_into_delta_per_bit(
        &mut self,
        src: usize,
        dst: usize,
        delta: &mut Vec<usize>,
    ) -> bool {
        if src == dst {
            return false;
        }
        let mut changed = false;
        for col in 0..self.n {
            if self.get(src, col) && self.set(dst, col) {
                delta.push(col);
                changed = true;
            }
        }
        changed
    }

    /// Per-bit reference for [`BitMatrix::or_and_rows_into_delta`] (see
    /// [`BitMatrix::or_row_into_delta_per_bit`]).
    pub fn or_and_rows_into_delta_per_bit(
        &mut self,
        a: usize,
        b: usize,
        dst: usize,
        delta: &mut Vec<usize>,
    ) -> bool {
        let mut changed = false;
        for col in 0..self.n {
            if self.get(a, col) && self.get(b, col) && self.set(dst, col) {
                delta.push(col);
                changed = true;
            }
        }
        changed
    }

    /// Iterates over the column indices of set bits in `row`.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let start = row * self.words_per_row;
        let n = self.n;
        (0..self.words_per_row)
            .flat_map(move |k| {
                let mut word = self.bits[start + k];
                std::iter::from_fn(move || {
                    if word == 0 {
                        None
                    } else {
                        let bit = word.trailing_zeros() as usize;
                        word &= word - 1;
                        Some(k * 64 + bit)
                    }
                })
            })
            .take_while(move |&c| c < n)
    }

    /// Computes the reflexive–transitive closure in place (Floyd–Warshall on
    /// booleans, using word-parallel row ORs).
    pub fn transitive_closure(&mut self) {
        for i in 0..self.n {
            self.set(i, i);
        }
        for k in 0..self.n {
            for i in 0..self.n {
                if self.get(i, k) {
                    self.or_row_into(k, i);
                }
            }
        }
    }

    /// Asserts the tail invariant: when `n % 64 != 0`, the spare high bits
    /// of every row's last word are zero.  Test/debug helper.
    pub fn debug_validate_tails(&self) {
        if self.n.is_multiple_of(64) || self.words_per_row == 0 {
            return;
        }
        let mask = !0u64 << (self.n % 64);
        for row in 0..self.n {
            let last = self.bits[row * self.words_per_row + self.words_per_row - 1];
            assert_eq!(
                last & mask,
                0,
                "tail bits of row {row} are set (dim {})",
                self.n
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut m = BitMatrix::new(70);
        assert!(!m.get(3, 65));
        assert!(m.set(3, 65));
        assert!(!m.set(3, 65));
        assert!(m.get(3, 65));
        assert_eq!(m.count_ones(), 1);
        assert_eq!(m.dim(), 70);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_rejects_out_of_range_columns_in_release_too() {
        let mut m = BitMatrix::new(63);
        m.set(0, 63); // would land in a tail bit of the last word
    }

    #[test]
    fn or_row_into_merges() {
        let mut m = BitMatrix::new(10);
        m.set(0, 1);
        m.set(0, 9);
        assert!(m.or_row_into(0, 2));
        assert!(m.get(2, 1) && m.get(2, 9));
        assert!(!m.or_row_into(0, 2));
        assert!(!m.or_row_into(5, 5));
    }

    #[test]
    fn iter_row_lists_set_columns() {
        let mut m = BitMatrix::new(130);
        for c in [0, 63, 64, 129] {
            m.set(7, c);
        }
        let cols: Vec<usize> = m.iter_row(7).collect();
        assert_eq!(cols, vec![0, 63, 64, 129]);
        assert!(m.iter_row(8).next().is_none());
    }

    #[test]
    fn grow_preserves_existing_bits() {
        let mut m = BitMatrix::new(3);
        m.set(0, 2);
        m.set(2, 1);
        m.grow(130); // crosses a word boundary
        assert_eq!(m.dim(), 130);
        assert!(m.get(0, 2) && m.get(2, 1));
        assert_eq!(m.count_ones(), 2);
        assert!(m.set(100, 129));
        assert!(m.get(100, 129));
        // Growing to the same size is a no-op.
        m.grow(130);
        assert_eq!(m.count_ones(), 3);
    }

    /// Regression fixture for the non-word-multiple widths around the u64
    /// boundary: grow across 63 → 64 → 65 (same-stride and stride-changing
    /// paths), checking bit preservation, the tail invariant and the
    /// last-column behaviour at every step.
    #[test]
    fn grow_across_word_boundary_widths() {
        for (from, to) in [(63, 64), (63, 65), (64, 65), (65, 128), (63, 130)] {
            let mut m = BitMatrix::new(from);
            // Mark the main diagonal plus the last valid column of row 0.
            for i in 0..from {
                m.set(i, i);
            }
            m.set(0, from - 1);
            let ones_before = m.count_ones();
            m.grow(to);
            m.debug_validate_tails();
            assert_eq!(m.dim(), to, "{from}->{to}");
            assert_eq!(m.count_ones(), ones_before, "{from}->{to}");
            for i in 0..from {
                assert!(m.get(i, i), "{from}->{to}: diagonal bit {i} lost");
            }
            assert!(m.get(0, from - 1), "{from}->{to}: last column lost");
            // The new columns and rows are clear and writable.
            for i in from..to {
                assert!(!m.get(0, i), "{from}->{to}: new column {i} dirty");
                assert!(m.set(i, to - 1), "{from}->{to}: new row {i} not writable");
            }
            m.debug_validate_tails();
        }
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        let mut m = BitMatrix::new(4);
        m.grow(2);
    }

    #[test]
    fn or_row_into_delta_reports_new_columns() {
        let mut m = BitMatrix::new(70);
        m.set(0, 1);
        m.set(0, 65);
        m.set(2, 1); // already present in dst
        let mut delta = Vec::new();
        assert!(m.or_row_into_delta(0, 2, &mut delta));
        assert_eq!(delta, vec![65]);
        delta.clear();
        assert!(!m.or_row_into_delta(0, 2, &mut delta));
        assert!(delta.is_empty());
        assert!(!m.or_row_into_delta(0, 0, &mut delta));
    }

    #[test]
    fn or_and_rows_into_delta_intersects() {
        let mut m = BitMatrix::new(10);
        m.set(0, 3);
        m.set(0, 4);
        m.set(1, 4);
        m.set(1, 5);
        let mut delta = Vec::new();
        assert!(m.or_and_rows_into_delta(0, 1, 2, &mut delta));
        assert_eq!(delta, vec![4]); // only the shared column lands in dst
        assert!(m.get(2, 4) && !m.get(2, 3) && !m.get(2, 5));
        delta.clear();
        assert!(!m.or_and_rows_into_delta(0, 1, 2, &mut delta));
    }

    #[test]
    fn or_and_rows_handles_aliased_and_equal_rows() {
        let mut m = BitMatrix::new(70);
        m.set(0, 3);
        m.set(0, 67);
        m.set(1, 3);
        let mut delta = Vec::new();
        // dst aliases a source: a & b ⊆ dst, provably a no-op.
        assert!(!m.or_and_rows_into_delta(0, 1, 0, &mut delta));
        assert!(!m.or_and_rows_into_delta(0, 1, 1, &mut delta));
        assert!(delta.is_empty());
        // a == b degenerates to the plain row OR.
        assert!(m.or_and_rows_into_delta(0, 0, 2, &mut delta));
        assert_eq!(delta, vec![3, 67]);
        assert!(m.get(2, 3) && m.get(2, 67));
    }

    #[test]
    fn union_rows_batches_multiple_sources() {
        let mut m = BitMatrix::new(70);
        m.set(0, 1);
        m.set(1, 65);
        m.set(2, 1); // already in dst
        m.set(3, 69);
        let mut delta = Vec::new();
        // Sources equal to dst are skipped rather than self-merged.
        assert!(m.union_rows_into_delta(&[0, 1, 2, 3], 2, &mut delta));
        let mut sorted = delta.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![65, 69]);
        assert!(m.get(2, 1) && m.get(2, 65) && m.get(2, 69));
        delta.clear();
        assert!(!m.union_rows_into_delta(&[0, 1, 3], 2, &mut delta));
        assert!(!m.union_rows_into_delta(&[], 2, &mut delta));
        m.debug_validate_tails();
    }

    /// The optimized word-parallel paths agree with the per-bit references
    /// at the widths flanking the word boundary (the proptest in
    /// `tests/bitmatrix_props.rs` covers random widths and patterns).
    #[test]
    fn delta_ops_match_per_bit_references_at_boundary_widths() {
        for n in [63usize, 64, 65] {
            let mut fast = BitMatrix::new(n);
            let mut slow = BitMatrix::new(n);
            // A deterministic pseudo-random pattern over three rows.
            let mut x = 0x9e3779b97f4a7c15u64;
            for row in 0..3 {
                for col in 0..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(row as u64);
                    if x >> 62 == 3 {
                        fast.set(row, col);
                        slow.set(row, col);
                    }
                }
            }
            let (mut df, mut ds) = (Vec::new(), Vec::new());
            assert_eq!(
                fast.or_row_into_delta(0, 2, &mut df),
                slow.or_row_into_delta_per_bit(0, 2, &mut ds),
                "width {n}"
            );
            df.sort_unstable();
            ds.sort_unstable();
            assert_eq!(df, ds, "width {n}");
            assert_eq!(fast, slow, "width {n}");

            let (mut df, mut ds) = (Vec::new(), Vec::new());
            assert_eq!(
                fast.or_and_rows_into_delta(0, 1, 2, &mut df),
                slow.or_and_rows_into_delta_per_bit(0, 1, 2, &mut ds),
                "width {n}"
            );
            df.sort_unstable();
            ds.sort_unstable();
            assert_eq!(df, ds, "width {n}");
            assert_eq!(fast, slow, "width {n}");
            fast.debug_validate_tails();
        }
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let mut m = BitMatrix::new(5);
        for i in 0..4 {
            m.set(i, i + 1);
        }
        m.transitive_closure();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), i <= j, "({i},{j})");
            }
        }
    }

    #[test]
    fn transitive_closure_is_idempotent() {
        let mut m = BitMatrix::new(8);
        m.set(0, 3);
        m.set(3, 6);
        m.set(6, 1);
        m.transitive_closure();
        let snapshot = m.clone();
        m.transitive_closure();
        assert_eq!(m, snapshot);
    }
}
