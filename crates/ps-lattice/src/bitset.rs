//! A compact square bit matrix.
//!
//! Algorithm `ALG` (Section 5.2) maintains a set `Γ` of directed arcs over
//! the subexpression set `V`; the matrix below stores those arcs with one
//! bit per pair, which keeps the `O(n⁴)` fixpoint loops cache-friendly.

/// A dense `n × n` bit matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// The dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads bit `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.n && col < self.n);
        let word = self.bits[row * self.words_per_row + col / 64];
        (word >> (col % 64)) & 1 == 1
    }

    /// Sets bit `(row, col)`; returns `true` if it was previously clear.
    pub fn set(&mut self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.n && col < self.n);
        let idx = row * self.words_per_row + col / 64;
        let mask = 1u64 << (col % 64);
        let was_clear = self.bits[idx] & mask == 0;
        self.bits[idx] |= mask;
        was_clear
    }

    /// Number of set bits in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// ORs row `src` into row `dst`; returns `true` if `dst` changed.
    pub fn or_row_into(&mut self, src: usize, dst: usize) -> bool {
        if src == dst {
            return false;
        }
        let (src_start, dst_start) = (src * self.words_per_row, dst * self.words_per_row);
        let mut changed = false;
        for k in 0..self.words_per_row {
            let s = self.bits[src_start + k];
            let d = self.bits[dst_start + k];
            if d | s != d {
                self.bits[dst_start + k] = d | s;
                changed = true;
            }
        }
        changed
    }

    /// Iterates over the column indices of set bits in `row`.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let start = row * self.words_per_row;
        let n = self.n;
        (0..self.words_per_row)
            .flat_map(move |k| {
                let mut word = self.bits[start + k];
                std::iter::from_fn(move || {
                    if word == 0 {
                        None
                    } else {
                        let bit = word.trailing_zeros() as usize;
                        word &= word - 1;
                        Some(k * 64 + bit)
                    }
                })
            })
            .take_while(move |&c| c < n)
    }

    /// Computes the reflexive–transitive closure in place (Floyd–Warshall on
    /// booleans, using word-parallel row ORs).
    pub fn transitive_closure(&mut self) {
        for i in 0..self.n {
            self.set(i, i);
        }
        for k in 0..self.n {
            for i in 0..self.n {
                if self.get(i, k) {
                    self.or_row_into(k, i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut m = BitMatrix::new(70);
        assert!(!m.get(3, 65));
        assert!(m.set(3, 65));
        assert!(!m.set(3, 65));
        assert!(m.get(3, 65));
        assert_eq!(m.count_ones(), 1);
        assert_eq!(m.dim(), 70);
    }

    #[test]
    fn or_row_into_merges() {
        let mut m = BitMatrix::new(10);
        m.set(0, 1);
        m.set(0, 9);
        assert!(m.or_row_into(0, 2));
        assert!(m.get(2, 1) && m.get(2, 9));
        assert!(!m.or_row_into(0, 2));
        assert!(!m.or_row_into(5, 5));
    }

    #[test]
    fn iter_row_lists_set_columns() {
        let mut m = BitMatrix::new(130);
        for c in [0, 63, 64, 129] {
            m.set(7, c);
        }
        let cols: Vec<usize> = m.iter_row(7).collect();
        assert_eq!(cols, vec![0, 63, 64, 129]);
        assert!(m.iter_row(8).next().is_none());
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let mut m = BitMatrix::new(5);
        for i in 0..4 {
            m.set(i, i + 1);
        }
        m.transitive_closure();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), i <= j, "({i},{j})");
            }
        }
    }

    #[test]
    fn transitive_closure_is_idempotent() {
        let mut m = BitMatrix::new(8);
        m.set(0, 3);
        m.set(3, 6);
        m.set(6, 1);
        m.transitive_closure();
        let snapshot = m.clone();
        m.transitive_closure();
        assert_eq!(m, snapshot);
    }
}
