//! A compact square bit matrix.
//!
//! Algorithm `ALG` (Section 5.2) maintains a set `Γ` of directed arcs over
//! the subexpression set `V`; the matrix below stores those arcs with one
//! bit per pair, which keeps the `O(n⁴)` fixpoint loops cache-friendly.

/// A dense `n × n` bit matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// The dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads bit `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.n && col < self.n);
        let word = self.bits[row * self.words_per_row + col / 64];
        (word >> (col % 64)) & 1 == 1
    }

    /// Sets bit `(row, col)`; returns `true` if it was previously clear.
    pub fn set(&mut self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.n && col < self.n);
        let idx = row * self.words_per_row + col / 64;
        let mask = 1u64 << (col % 64);
        let was_clear = self.bits[idx] & mask == 0;
        self.bits[idx] |= mask;
        was_clear
    }

    /// Number of set bits in the whole matrix.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Grows the matrix to `new_n × new_n`, preserving every existing bit.
    ///
    /// New rows and columns start all-zero.  Shrinking is not supported;
    /// `new_n < dim()` panics.
    pub fn grow(&mut self, new_n: usize) {
        assert!(new_n >= self.n, "BitMatrix::grow cannot shrink");
        if new_n == self.n {
            return;
        }
        let new_words_per_row = new_n.div_ceil(64);
        if new_words_per_row == self.words_per_row {
            // Same row stride: the new columns live in already-present (and
            // zero) word tails, so appending zeroed rows suffices — no full
            // matrix copy on the incremental-extension hot path.
            self.bits.resize(new_n * new_words_per_row, 0);
        } else {
            let mut new_bits = vec![0u64; new_n * new_words_per_row];
            for row in 0..self.n {
                let src = row * self.words_per_row;
                let dst = row * new_words_per_row;
                new_bits[dst..dst + self.words_per_row]
                    .copy_from_slice(&self.bits[src..src + self.words_per_row]);
            }
            self.words_per_row = new_words_per_row;
            self.bits = new_bits;
        }
        self.n = new_n;
    }

    /// ORs row `src` into row `dst`; returns `true` if `dst` changed.
    pub fn or_row_into(&mut self, src: usize, dst: usize) -> bool {
        if src == dst {
            return false;
        }
        let (src_start, dst_start) = (src * self.words_per_row, dst * self.words_per_row);
        let mut changed = false;
        for k in 0..self.words_per_row {
            let s = self.bits[src_start + k];
            let d = self.bits[dst_start + k];
            if d | s != d {
                self.bits[dst_start + k] = d | s;
                changed = true;
            }
        }
        changed
    }

    /// ORs row `src` into row `dst`, appending the column index of every bit
    /// that became set to `delta`.  Returns `true` if `dst` changed.
    ///
    /// The saturation engine uses the delta to mirror new arcs into the
    /// transposed matrix and to seed its worklist.
    pub fn or_row_into_delta(&mut self, src: usize, dst: usize, delta: &mut Vec<usize>) -> bool {
        if src == dst {
            return false;
        }
        // `src & src == src`, so the OR is the AND-OR with both operands src.
        self.or_and_rows_into_delta(src, src, dst, delta)
    }

    /// ORs the intersection of rows `a` and `b` into row `dst`
    /// (`dst |= a & b`), appending newly set column indices to `delta`.
    /// Returns `true` if `dst` changed.
    ///
    /// This is the word-parallel form of the two-premise rules of algorithm
    /// ALG (rules 2 and 4): the conclusion row receives every element reached
    /// by *both* children at once.
    pub fn or_and_rows_into_delta(
        &mut self,
        a: usize,
        b: usize,
        dst: usize,
        delta: &mut Vec<usize>,
    ) -> bool {
        let (a_start, b_start, dst_start) = (
            a * self.words_per_row,
            b * self.words_per_row,
            dst * self.words_per_row,
        );
        let mut changed = false;
        for k in 0..self.words_per_row {
            let s = self.bits[a_start + k] & self.bits[b_start + k];
            let d = self.bits[dst_start + k];
            let mut new_bits = s & !d;
            if new_bits != 0 {
                self.bits[dst_start + k] = d | s;
                changed = true;
                while new_bits != 0 {
                    let bit = new_bits.trailing_zeros() as usize;
                    new_bits &= new_bits - 1;
                    delta.push(k * 64 + bit);
                }
            }
        }
        changed
    }

    /// Iterates over the column indices of set bits in `row`.
    pub fn iter_row(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let start = row * self.words_per_row;
        let n = self.n;
        (0..self.words_per_row)
            .flat_map(move |k| {
                let mut word = self.bits[start + k];
                std::iter::from_fn(move || {
                    if word == 0 {
                        None
                    } else {
                        let bit = word.trailing_zeros() as usize;
                        word &= word - 1;
                        Some(k * 64 + bit)
                    }
                })
            })
            .take_while(move |&c| c < n)
    }

    /// Computes the reflexive–transitive closure in place (Floyd–Warshall on
    /// booleans, using word-parallel row ORs).
    pub fn transitive_closure(&mut self) {
        for i in 0..self.n {
            self.set(i, i);
        }
        for k in 0..self.n {
            for i in 0..self.n {
                if self.get(i, k) {
                    self.or_row_into(k, i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut m = BitMatrix::new(70);
        assert!(!m.get(3, 65));
        assert!(m.set(3, 65));
        assert!(!m.set(3, 65));
        assert!(m.get(3, 65));
        assert_eq!(m.count_ones(), 1);
        assert_eq!(m.dim(), 70);
    }

    #[test]
    fn or_row_into_merges() {
        let mut m = BitMatrix::new(10);
        m.set(0, 1);
        m.set(0, 9);
        assert!(m.or_row_into(0, 2));
        assert!(m.get(2, 1) && m.get(2, 9));
        assert!(!m.or_row_into(0, 2));
        assert!(!m.or_row_into(5, 5));
    }

    #[test]
    fn iter_row_lists_set_columns() {
        let mut m = BitMatrix::new(130);
        for c in [0, 63, 64, 129] {
            m.set(7, c);
        }
        let cols: Vec<usize> = m.iter_row(7).collect();
        assert_eq!(cols, vec![0, 63, 64, 129]);
        assert!(m.iter_row(8).next().is_none());
    }

    #[test]
    fn grow_preserves_existing_bits() {
        let mut m = BitMatrix::new(3);
        m.set(0, 2);
        m.set(2, 1);
        m.grow(130); // crosses a word boundary
        assert_eq!(m.dim(), 130);
        assert!(m.get(0, 2) && m.get(2, 1));
        assert_eq!(m.count_ones(), 2);
        assert!(m.set(100, 129));
        assert!(m.get(100, 129));
        // Growing to the same size is a no-op.
        m.grow(130);
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn grow_rejects_shrinking() {
        let mut m = BitMatrix::new(4);
        m.grow(2);
    }

    #[test]
    fn or_row_into_delta_reports_new_columns() {
        let mut m = BitMatrix::new(70);
        m.set(0, 1);
        m.set(0, 65);
        m.set(2, 1); // already present in dst
        let mut delta = Vec::new();
        assert!(m.or_row_into_delta(0, 2, &mut delta));
        assert_eq!(delta, vec![65]);
        delta.clear();
        assert!(!m.or_row_into_delta(0, 2, &mut delta));
        assert!(delta.is_empty());
        assert!(!m.or_row_into_delta(0, 0, &mut delta));
    }

    #[test]
    fn or_and_rows_into_delta_intersects() {
        let mut m = BitMatrix::new(10);
        m.set(0, 3);
        m.set(0, 4);
        m.set(1, 4);
        m.set(1, 5);
        let mut delta = Vec::new();
        assert!(m.or_and_rows_into_delta(0, 1, 2, &mut delta));
        assert_eq!(delta, vec![4]); // only the shared column lands in dst
        assert!(m.get(2, 4) && !m.get(2, 3) && !m.get(2, 5));
        delta.clear();
        assert!(!m.or_and_rows_into_delta(0, 1, 2, &mut delta));
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let mut m = BitMatrix::new(5);
        for i in 0..4 {
            m.set(i, i + 1);
        }
        m.transitive_closure();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(m.get(i, j), i <= j, "({i},{j})");
            }
        }
    }

    #[test]
    fn transitive_closure_is_idempotent() {
        let mut m = BitMatrix::new(8);
        m.set(0, 3);
        m.set(3, 6);
        m.set(6, 1);
        m.transitive_closure();
        let snapshot = m.clone();
        m.transitive_closure();
        assert_eq!(m, snapshot);
    }
}
