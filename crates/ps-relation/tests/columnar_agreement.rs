//! Property tests pinning the columnar kernel and the indexed chase to
//! row-oriented reference implementations.
//!
//! The references deliberately re-implement the pre-columnar semantics:
//! rows as materialized `Vec<Symbol>` lists with `Vec + HashSet` dedup,
//! quadratic double-loop FD checks, the triple-loop MVD check, and the
//! full-rescan chase ([`ps_relation::chase_fds_naive`]).  Every public bulk
//! operation of the columnar [`Relation`] must agree with them on random
//! inputs, and the attribute closure's linear Beeri–Bernstein counter
//! algorithm must agree with the naïve fixpoint loop.

use std::collections::HashSet;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ps_base::{AttrSet, Attribute, Symbol, SymbolTable, Universe};
use ps_relation::{
    canonical_chase_rows, chase_fds, chase_fds_naive, chase_fds_with, fd_closure, ChaseScratch,
    Database, Fd, Mvd, Relation, RelationScheme,
};

/// A random relation over `arity` attributes with `rows` candidate rows
/// drawn from a per-column domain of `domain` symbols (duplicates likely).
struct RandomRelation {
    universe: Universe,
    symbols: SymbolTable,
    attrs: Vec<Attribute>,
    relation: Relation,
    /// The raw candidate rows, in insertion order, duplicates included.
    raw_rows: Vec<Vec<Symbol>>,
}

fn random_relation(arity: usize, rows: usize, domain: usize, seed: u64) -> RandomRelation {
    let mut universe = Universe::new();
    let mut symbols = SymbolTable::new();
    let attrs: Vec<Attribute> = (0..arity)
        .map(|i| universe.attr(&format!("A{i}")))
        .collect();
    let scheme = RelationScheme::new("R", attrs.clone());
    let mut relation = Relation::new(scheme);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut raw_rows = Vec::new();
    for _ in 0..rows {
        let values: Vec<Symbol> = (0..arity)
            .map(|c| symbols.symbol(&format!("c{c}_v{}", rng.gen_range(0..domain))))
            .collect();
        relation.insert_values(&values).unwrap();
        raw_rows.push(values);
    }
    RandomRelation {
        universe,
        symbols,
        attrs,
        relation,
        raw_rows,
    }
}

/// A random non-empty subset of `attrs`.
fn random_attr_subset(attrs: &[Attribute], rng: &mut StdRng) -> AttrSet {
    loop {
        let set: AttrSet = attrs
            .iter()
            .filter(|_| rng.gen_bool(0.5))
            .copied()
            .collect();
        if !set.is_empty() {
            return set;
        }
    }
}

// ---------------------------------------------------------------------------
// Row-oriented references (the pre-columnar semantics).
// ---------------------------------------------------------------------------

/// Reference dedup: `Vec` for order, `HashSet` for membership.
fn ref_distinct_rows(raw: &[Vec<Symbol>]) -> Vec<Vec<Symbol>> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for row in raw {
        if seen.insert(row.clone()) {
            out.push(row.clone());
        }
    }
    out
}

/// Reference `t[X]`: values of the row under `attrs ∩ scheme`, in sorted
/// attribute order.
fn ref_project_row(scheme: &RelationScheme, row: &[Symbol], attrs: &AttrSet) -> Vec<Symbol> {
    attrs
        .iter()
        .filter_map(|a| scheme.position(a))
        .map(|p| row[p])
        .collect()
}

/// Reference projection: project every row, dedup in order.
fn ref_project(scheme: &RelationScheme, rows: &[Vec<Symbol>], attrs: &AttrSet) -> Vec<Vec<Symbol>> {
    let projected: Vec<Vec<Symbol>> = rows
        .iter()
        .map(|r| ref_project_row(scheme, r, attrs))
        .collect();
    ref_distinct_rows(&projected)
}

/// Reference FD check: the quadratic double loop.
fn ref_satisfies_fd(scheme: &RelationScheme, rows: &[Vec<Symbol>], fd: &Fd) -> bool {
    for i in 0..rows.len() {
        for j in (i + 1)..rows.len() {
            if ref_project_row(scheme, &rows[i], &fd.lhs)
                == ref_project_row(scheme, &rows[j], &fd.lhs)
                && ref_project_row(scheme, &rows[i], &fd.rhs)
                    != ref_project_row(scheme, &rows[j], &fd.rhs)
            {
                return false;
            }
        }
    }
    true
}

/// Reference MVD check: the triple loop over row pairs and witnesses.
fn ref_satisfies_mvd(scheme: &RelationScheme, rows: &[Vec<Symbol>], mvd: &Mvd) -> bool {
    let x = &mvd.lhs;
    let y = &mvd.rhs;
    let z = scheme.attrs().difference(&x.union(y));
    for t in rows {
        for h in rows {
            if ref_project_row(scheme, t, x) != ref_project_row(scheme, h, x) {
                continue;
            }
            let exists = rows.iter().any(|w| {
                ref_project_row(scheme, w, x) == ref_project_row(scheme, t, x)
                    && ref_project_row(scheme, w, y) == ref_project_row(scheme, t, y)
                    && ref_project_row(scheme, w, &z) == ref_project_row(scheme, h, &z)
            });
            if !exists {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `insert` agrees with the Vec + HashSet reference: same distinct rows
    /// in the same insertion order, and `contains_values` matches set
    /// membership (including for rows never inserted).
    #[test]
    fn prop_insert_matches_row_reference(
        seed in 0u64..10_000,
        arity in 1usize..4,
        rows in 0usize..12,
        domain in 1usize..3,
    ) {
        let w = random_relation(arity, rows, domain, seed);
        let expected = ref_distinct_rows(&w.raw_rows);
        let actual: Vec<Vec<Symbol>> = w.relation.iter().map(|t| t.to_values()).collect();
        prop_assert_eq!(&actual, &expected);
        prop_assert_eq!(w.relation.len(), expected.len());
        prop_assert_eq!(
            w.relation.storage_cells(),
            w.relation.scheme().arity() * w.relation.len(),
            "columnar kernel must store each row exactly once"
        );
        let member: HashSet<Vec<Symbol>> = expected.iter().cloned().collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut symbols = w.symbols.clone();
        for _ in 0..8 {
            let probe: Vec<Symbol> = (0..arity)
                .map(|c| symbols.symbol(&format!("c{c}_v{}", rng.gen_range(0..domain + 1))))
                .collect();
            prop_assert_eq!(w.relation.contains_values(&probe), member.contains(&probe));
        }
    }

    /// `project` agrees with project-every-row-then-dedup.
    #[test]
    fn prop_project_matches_row_reference(
        seed in 0u64..10_000,
        arity in 1usize..4,
        rows in 0usize..12,
    ) {
        let w = random_relation(arity, rows, 2, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFACADE);
        let attrs = random_attr_subset(&w.attrs, &mut rng);
        let distinct = ref_distinct_rows(&w.raw_rows);
        let expected = ref_project(w.relation.scheme(), &distinct, &attrs);
        let actual: Vec<Vec<Symbol>> = w
            .relation
            .project("P", &attrs)
            .unwrap()
            .iter()
            .map(|t| t.to_values())
            .collect();
        prop_assert_eq!(actual, expected);
        // active_domain of each column equals the distinct column values.
        for (pos, &attr) in w.attrs.iter().enumerate() {
            let mut seen = HashSet::new();
            let expected_domain: Vec<Symbol> = distinct
                .iter()
                .map(|r| r[pos])
                .filter(|&s| seen.insert(s))
                .collect();
            prop_assert_eq!(w.relation.active_domain(attr).unwrap(), expected_domain);
        }
    }

    /// The hash-grouped `satisfies_fd` agrees with the quadratic double loop,
    /// including FDs whose attributes fall partly or fully outside the
    /// scheme.
    #[test]
    fn prop_satisfies_fd_matches_quadratic_reference(
        seed in 0u64..10_000,
        arity in 1usize..4,
        rows in 0usize..12,
    ) {
        let mut w = random_relation(arity, rows, 2, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFD);
        // One attribute beyond the scheme, to exercise vacuous columns.
        let extra = w.universe.attr("Z");
        let mut pool = w.attrs.clone();
        pool.push(extra);
        let distinct = ref_distinct_rows(&w.raw_rows);
        for _ in 0..6 {
            let fd = Fd::new(
                random_attr_subset(&pool, &mut rng),
                random_attr_subset(&pool, &mut rng),
            );
            prop_assert_eq!(
                w.relation.satisfies_fd(&fd),
                ref_satisfies_fd(w.relation.scheme(), &distinct, &fd),
                "fd {}", fd.render(&w.universe)
            );
        }
    }

    /// The hash-grouped, cardinality-based `satisfies_mvd` agrees with the
    /// triple-loop reference.
    #[test]
    fn prop_satisfies_mvd_matches_triple_loop_reference(
        seed in 0u64..10_000,
        arity in 2usize..4,
        rows in 0usize..10,
    ) {
        let w = random_relation(arity, rows, 2, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3FD);
        let distinct = ref_distinct_rows(&w.raw_rows);
        for _ in 0..6 {
            let mvd = Mvd::new(
                random_attr_subset(&w.attrs, &mut rng),
                random_attr_subset(&w.attrs, &mut rng),
            );
            prop_assert_eq!(
                w.relation.satisfies_mvd(&mvd),
                ref_satisfies_mvd(w.relation.scheme(), &distinct, &mvd),
                "mvd {}", mvd.render(&w.universe)
            );
        }
    }

    /// The indexed worklist chase agrees with the full-rescan reference on
    /// random databases: same verdict, same chased rows up to null renaming
    /// (the FD chase is confluent), valid weak instances when consistent.
    #[test]
    fn prop_indexed_chase_matches_full_rescans(
        seed in 0u64..10_000,
        relations in 1usize..4,
        rows in 1usize..6,
        num_fds in 0usize..4,
    ) {
        let mut universe = Universe::new();
        let mut symbols = SymbolTable::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let attrs: Vec<Attribute> = (0..4).map(|i| universe.attr(&format!("A{i}"))).collect();
        let mut db = Database::new();
        for r in 0..relations {
            let subset = random_attr_subset(&attrs, &mut rng);
            let scheme = RelationScheme::new(format!("R{r}"), subset.clone());
            let mut relation = Relation::new(scheme.clone());
            for _ in 0..rows {
                let mut values = vec![Symbol::from_index(0); subset.len()];
                for a in subset.iter() {
                    values[scheme.position(a).unwrap()] =
                        symbols.symbol(&format!("a{}_v{}", a.index(), rng.gen_range(0..3)));
                }
                relation.insert_values(&values).unwrap();
            }
            db.add(relation);
        }
        let used: Vec<Attribute> = db.all_attributes().iter().collect();
        let fds: Vec<Fd> = (0..num_fds)
            .map(|_| {
                let lhs = used[rng.gen_range(0..used.len())];
                let rhs = used[rng.gen_range(0..used.len())];
                Fd::new(AttrSet::singleton(lhs), AttrSet::singleton(rhs))
            })
            .collect();

        let mut s1 = symbols.clone();
        let indexed = chase_fds(&db, &fds, &mut s1);
        let mut s2 = symbols.clone();
        let naive = chase_fds_naive(&db, &fds, &mut s2);
        prop_assert_eq!(indexed.consistent, naive.consistent);
        match (&indexed.rows, &naive.rows) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(canonical_chase_rows(a, &s1), canonical_chase_rows(b, &s2));
                prop_assert_eq!(indexed.steps, naive.steps);
            }
            (None, None) => {}
            _ => prop_assert!(false, "verdicts agree but rows differ in presence"),
        }
        if let Some(w) = indexed.weak_instance("W", &db.all_attributes()) {
            prop_assert!(db.has_weak_instance(&w));
            prop_assert!(w.satisfies_all_fds(&fds));
        }
    }

    /// Buffer reuse never changes results: chasing a sequence of random
    /// databases through one shared [`ChaseScratch`] yields outcomes
    /// identical — verdict, rows, and every counter — to fresh-allocation
    /// runs, regardless of what the scratch held before.
    #[test]
    fn prop_chase_scratch_reuse_matches_fresh_runs(
        seed in 0u64..10_000,
        batches in 1usize..5,
        rows in 1usize..6,
        num_fds in 0usize..4,
    ) {
        let mut universe = Universe::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C8A7C4);
        let attrs: Vec<Attribute> = (0..4).map(|i| universe.attr(&format!("A{i}"))).collect();
        let mut scratch = ChaseScratch::default();
        for batch in 0..batches {
            let mut symbols = SymbolTable::new();
            let mut db = Database::new();
            let relations = 1 + batch % 3;
            for r in 0..relations {
                let subset = random_attr_subset(&attrs, &mut rng);
                let scheme = RelationScheme::new(format!("R{r}"), subset.clone());
                let mut relation = Relation::new(scheme.clone());
                for _ in 0..rows {
                    let mut values = vec![Symbol::from_index(0); subset.len()];
                    for a in subset.iter() {
                        values[scheme.position(a).unwrap()] =
                            symbols.symbol(&format!("a{}_v{}", a.index(), rng.gen_range(0..3)));
                    }
                    relation.insert_values(&values).unwrap();
                }
                db.add(relation);
            }
            let used: Vec<Attribute> = db.all_attributes().iter().collect();
            let fds: Vec<Fd> = (0..num_fds)
                .map(|_| {
                    let lhs = used[rng.gen_range(0..used.len())];
                    let rhs = used[rng.gen_range(0..used.len())];
                    Fd::new(AttrSet::singleton(lhs), AttrSet::singleton(rhs))
                })
                .collect();

            let mut s1 = symbols.clone();
            let reused = chase_fds_with(&db, &fds, &mut s1, &mut scratch);
            let mut s2 = symbols.clone();
            let fresh = chase_fds(&db, &fds, &mut s2);
            prop_assert_eq!(reused.consistent, fresh.consistent);
            prop_assert_eq!(reused.steps, fresh.steps);
            prop_assert_eq!(reused.rounds, fresh.rounds);
            prop_assert_eq!(reused.row_visits, fresh.row_visits);
            match (&reused.rows, &fresh.rows) {
                (Some(a), Some(b)) => prop_assert_eq!(
                    canonical_chase_rows(a, &s1),
                    canonical_chase_rows(b, &s2)
                ),
                (None, None) => {}
                _ => prop_assert!(false, "verdicts agree but rows differ in presence"),
            }
        }
    }

    /// Satellite: the linear Beeri–Bernstein attribute closure agrees with
    /// the naïve quadratic fixpoint on random FD sets.
    #[test]
    fn prop_attribute_closure_matches_naive_loop(
        seed in 0u64..10_000,
        num_attrs in 2usize..7,
        num_fds in 0usize..8,
    ) {
        let mut universe = Universe::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let attrs: Vec<Attribute> = (0..num_attrs)
            .map(|i| universe.attr(&format!("A{i}")))
            .collect();
        let fds: Vec<Fd> = (0..num_fds)
            .map(|_| {
                Fd::new(
                    random_attr_subset(&attrs, &mut rng),
                    random_attr_subset(&attrs, &mut rng),
                )
            })
            .collect();
        let start = random_attr_subset(&attrs, &mut rng);
        prop_assert_eq!(
            fd_closure::attribute_closure(&fds, &start),
            fd_closure::attribute_closure_naive(&fds, &start)
        );
    }
}
