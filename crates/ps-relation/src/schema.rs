//! Relation schemes and database schemes (Section 2.1).

use std::fmt;

use ps_base::{AttrSet, Attribute, Universe};

/// A relation scheme `R[U]`: a name `R` and a set of attributes `U`.
///
/// Tuples of relations over this scheme store their values in the order of
/// `U`'s sorted attribute ids; [`RelationScheme::position`] maps an
/// attribute to its column index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelationScheme {
    name: String,
    attrs: AttrSet,
}

impl RelationScheme {
    /// Creates a scheme with the given name and attributes.
    ///
    /// # Panics
    /// Panics if `attrs` is empty: the paper's relation schemes always have
    /// at least one attribute.
    pub fn new(name: impl Into<String>, attrs: impl Into<AttrSet>) -> Self {
        let attrs = attrs.into();
        assert!(
            !attrs.is_empty(),
            "a relation scheme needs at least one attribute"
        );
        RelationScheme {
            name: name.into(),
            attrs,
        }
    }

    /// The scheme's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scheme's attribute set `U`.
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Number of attributes (the arity of tuples over this scheme).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The column index of `attr` within this scheme, if present.
    pub fn position(&self, attr: Attribute) -> Option<usize> {
        self.attrs.as_slice().binary_search(&attr).ok()
    }

    /// Whether the scheme contains `attr`.
    pub fn contains(&self, attr: Attribute) -> bool {
        self.attrs.contains(attr)
    }

    /// Renders the scheme as `R[ABC]` using attribute names.
    pub fn render(&self, universe: &Universe) -> String {
        format!("{}[{}]", self.name, universe.render_set(&self.attrs))
    }
}

impl fmt::Display for RelationScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.name, self.attrs)
    }
}

/// A database scheme `D = {R₁[U₁], …, R_n[U_n]}`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseScheme {
    schemes: Vec<RelationScheme>,
}

impl DatabaseScheme {
    /// Creates an empty database scheme.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a database scheme from a list of relation schemes.
    pub fn from_schemes(schemes: Vec<RelationScheme>) -> Self {
        DatabaseScheme { schemes }
    }

    /// Adds a relation scheme.
    pub fn add(&mut self, scheme: RelationScheme) {
        self.schemes.push(scheme);
    }

    /// The relation schemes, in insertion order.
    pub fn schemes(&self) -> &[RelationScheme] {
        &self.schemes
    }

    /// Number of relation schemes.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Whether the database scheme has no relation schemes.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }

    /// The union `U` of all attributes appearing in the database scheme —
    /// the universe over which weak instances live.
    pub fn all_attributes(&self) -> AttrSet {
        self.schemes
            .iter()
            .fold(AttrSet::new(), |acc, s| acc.union(s.attrs()))
    }

    /// Looks up a relation scheme by name.
    pub fn scheme_named(&self, name: &str) -> Option<&RelationScheme> {
        self.schemes.iter().find(|s| s.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Universe, Vec<Attribute>) {
        let mut u = Universe::new();
        let attrs = u.attrs(["A", "B", "C"]);
        (u, attrs)
    }

    #[test]
    fn scheme_positions_follow_sorted_attribute_order() {
        let (_, a) = setup();
        let scheme = RelationScheme::new("R", vec![a[2], a[0]]);
        assert_eq!(scheme.arity(), 2);
        assert_eq!(scheme.position(a[0]), Some(0));
        assert_eq!(scheme.position(a[2]), Some(1));
        assert_eq!(scheme.position(a[1]), None);
        assert!(scheme.contains(a[0]));
        assert!(!scheme.contains(a[1]));
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_scheme_is_rejected() {
        let _ = RelationScheme::new("R", AttrSet::new());
    }

    #[test]
    fn render_uses_attribute_names() {
        let (u, a) = setup();
        let scheme = RelationScheme::new("Emp", vec![a[0], a[1]]);
        assert_eq!(scheme.render(&u), "Emp[AB]");
        assert_eq!(scheme.name(), "Emp");
        assert_eq!(format!("{scheme}"), "Emp{#0,#1}");
    }

    #[test]
    fn database_scheme_collects_all_attributes() {
        let (_, a) = setup();
        let mut db = DatabaseScheme::new();
        assert!(db.is_empty());
        db.add(RelationScheme::new("R1", vec![a[0], a[1]]));
        db.add(RelationScheme::new("R2", vec![a[1], a[2]]));
        assert_eq!(db.len(), 2);
        assert_eq!(db.all_attributes(), vec![a[0], a[1], a[2]].into());
        assert_eq!(db.scheme_named("R2").unwrap().arity(), 2);
        assert!(db.scheme_named("missing").is_none());
    }

    #[test]
    fn from_schemes_constructor() {
        let (_, a) = setup();
        let db = DatabaseScheme::from_schemes(vec![RelationScheme::new("R", vec![a[0]])]);
        assert_eq!(db.schemes().len(), 1);
    }
}
