//! Errors for the relational substrate.

use std::fmt;

use ps_base::Attribute;

/// Errors raised by relation and database manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A tuple has a different number of values than its scheme has
    /// attributes.
    ArityMismatch {
        /// Name of the relation scheme involved.
        scheme: String,
        /// Number of attributes in the scheme.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// An attribute was used with a relation whose scheme does not contain
    /// it.
    AttributeNotInScheme {
        /// Name of the relation scheme involved.
        scheme: String,
        /// The offending attribute.
        attribute: Attribute,
    },
    /// A projection or dependency mentioned an empty attribute set where a
    /// non-empty one is required.
    EmptyAttributeSet(&'static str),
    /// Two relations were combined with an operation that requires equal
    /// schemes.
    SchemeMismatch {
        /// Name of the left relation scheme.
        left: String,
        /// Name of the right relation scheme.
        right: String,
    },
    /// Two relations with the same name were added to one
    /// [`crate::DatabaseBuilder`].
    DuplicateRelation {
        /// The repeated relation name.
        name: String,
    },
    /// The same attribute name appeared twice in one relation scheme.
    DuplicateAttribute {
        /// Name of the relation scheme involved.
        scheme: String,
        /// The repeated attribute name.
        name: String,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch {
                scheme,
                expected,
                found,
            } => write!(
                f,
                "tuple arity mismatch for scheme `{scheme}`: expected {expected} values, found {found}"
            ),
            RelationError::AttributeNotInScheme { scheme, attribute } => {
                write!(f, "attribute {attribute} is not in scheme `{scheme}`")
            }
            RelationError::EmptyAttributeSet(what) => {
                write!(f, "{what} requires a non-empty attribute set")
            }
            RelationError::SchemeMismatch { left, right } => write!(
                f,
                "operation requires identical schemes, got `{left}` and `{right}`"
            ),
            RelationError::DuplicateRelation { name } => {
                write!(f, "a relation named `{name}` was already added")
            }
            RelationError::DuplicateAttribute { scheme, name } => {
                write!(
                    f,
                    "attribute `{name}` appears twice in the scheme of `{scheme}`"
                )
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RelationError::ArityMismatch {
            scheme: "R".into(),
            expected: 3,
            found: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = RelationError::AttributeNotInScheme {
            scheme: "R".into(),
            attribute: Attribute::from_index(1),
        };
        assert!(e.to_string().contains("not in scheme"));
        assert!(RelationError::EmptyAttributeSet("projection")
            .to_string()
            .contains("non-empty"));
        let e = RelationError::SchemeMismatch {
            left: "R".into(),
            right: "S".into(),
        };
        assert!(e.to_string().contains("identical schemes"));
        let e = RelationError::DuplicateRelation { name: "R".into() };
        assert!(e.to_string().contains("already added"));
        let e = RelationError::DuplicateAttribute {
            scheme: "R".into(),
            name: "A".into(),
        };
        assert!(e.to_string().contains("appears twice"));
    }
}
