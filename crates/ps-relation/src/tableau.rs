//! Tableaux: padded tables over the full attribute universe.
//!
//! The weak-satisfaction test of Honeyman (used throughout Sections 4.3 and
//! 6 of the paper) starts from a *tableau*: one row per database tuple,
//! ranging over the union `U` of all attributes, with the tuple's own
//! columns holding its constants and every other column holding a fresh
//! null.  The chase ([`crate::chase`]) then equates symbols as dictated by
//! the FDs.

use ps_base::{AttrSet, Attribute, FreshSymbols, Symbol, SymbolTable};

use crate::Database;

/// A tableau: rows of symbols over a fixed attribute set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    attrs: AttrSet,
    rows: Vec<Vec<Symbol>>,
}

impl Tableau {
    /// Builds the tableau of `db` over the union of all its attributes,
    /// padding missing columns with fresh nulls drawn from `symbols`.
    pub fn from_database(db: &Database, symbols: &mut SymbolTable) -> Self {
        Self::from_database_over(db, &db.all_attributes(), symbols)
    }

    /// Builds the tableau of `db` over an explicit attribute set `attrs`
    /// (which must contain every attribute used by `db`); useful when the
    /// constraint set mentions attributes the database does not.
    pub fn from_database_over(db: &Database, attrs: &AttrSet, symbols: &mut SymbolTable) -> Self {
        Self::build(db, attrs, || symbols.fresh())
    }

    /// Like [`Tableau::from_database_over`], but pads with nulls minted from
    /// a detached [`FreshSymbols`] source instead of mutating the table.
    ///
    /// This is the entry point used when chasing against a frozen
    /// (`&`-shared) symbol table, e.g. one snapshot queried by many worker
    /// threads, each holding its own source.  Null *identity* never affects
    /// chase verdicts — only within-tableau distinctness matters, which a
    /// single source guarantees.
    pub fn from_database_frozen(db: &Database, attrs: &AttrSet, fresh: &mut FreshSymbols) -> Self {
        Self::build(db, attrs, || fresh.fresh())
    }

    fn build(db: &Database, attrs: &AttrSet, mut fresh: impl FnMut() -> Symbol) -> Self {
        let mut rows = Vec::with_capacity(db.total_tuples());
        for relation in db.relations() {
            // Resolve each tableau column to the relation's column (or a
            // fresh-null pad) once per relation, then walk the columns.
            let positions: Vec<Option<usize>> = attrs
                .iter()
                .map(|a| relation.scheme().position(a))
                .collect();
            for row in relation.iter() {
                let padded: Vec<Symbol> = positions
                    .iter()
                    .map(|pos| match pos {
                        Some(pos) => row.value_at(*pos),
                        None => fresh(),
                    })
                    .collect();
                rows.push(padded);
            }
        }
        Tableau {
            attrs: attrs.clone(),
            rows,
        }
    }

    /// Creates a tableau directly from rows (mainly for tests).
    pub fn from_rows(attrs: AttrSet, rows: Vec<Vec<Symbol>>) -> Self {
        assert!(
            rows.iter().all(|r| r.len() == attrs.len()),
            "every row must have one symbol per attribute"
        );
        Tableau { attrs, rows }
    }

    /// The attribute set the tableau ranges over.
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<Symbol>] {
        &self.rows
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether the tableau has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The column index of `attr`, if it is part of the tableau.
    pub fn position(&self, attr: Attribute) -> Option<usize> {
        self.attrs.as_slice().binary_search(&attr).ok()
    }

    /// The symbol at `(row, attr)`.
    pub fn get(&self, row: usize, attr: Attribute) -> Option<Symbol> {
        Some(self.rows[row][self.position(attr)?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use ps_base::Universe;

    fn two_relation_db() -> (Universe, SymbolTable, Database) {
        let mut u = Universe::new();
        let mut s = SymbolTable::new();
        let db = DatabaseBuilder::new()
            .relation(
                &mut u,
                &mut s,
                "R1",
                &["A", "B"],
                &[&["a", "b"], &["a2", "b"]],
            )
            .unwrap()
            .relation(&mut u, &mut s, "R2", &["B", "C"], &[&["b", "c"]])
            .unwrap()
            .build();
        (u, s, db)
    }

    #[test]
    fn tableau_has_one_row_per_tuple_and_pads_with_nulls() {
        let (u, mut s, db) = two_relation_db();
        let tableau = Tableau::from_database(&db, &mut s);
        assert_eq!(tableau.num_rows(), 3);
        assert_eq!(tableau.attrs().len(), 3);
        assert!(!tableau.is_empty());
        let a = u.lookup("A").unwrap();
        let c = u.lookup("C").unwrap();
        // First row comes from R1: constant under A, fresh null under C.
        let a_val = tableau.get(0, a).unwrap();
        let c_val = tableau.get(0, c).unwrap();
        assert!(s.is_constant(a_val));
        assert!(s.is_fresh(c_val));
        // Third row comes from R2: null under A, constant under C.
        assert!(s.is_fresh(tableau.get(2, a).unwrap()));
        assert!(s.is_constant(tableau.get(2, c).unwrap()));
    }

    #[test]
    fn nulls_are_distinct_across_cells() {
        let (_, mut s, db) = two_relation_db();
        let tableau = Tableau::from_database(&db, &mut s);
        let mut nulls = Vec::new();
        for row in tableau.rows() {
            for &sym in row {
                if s.is_fresh(sym) {
                    nulls.push(sym);
                }
            }
        }
        let unique: std::collections::HashSet<_> = nulls.iter().collect();
        assert_eq!(unique.len(), nulls.len());
        assert_eq!(nulls.len(), 2 + 1); // R1 rows miss C (2 nulls), R2 row misses A (1 null).
    }

    #[test]
    fn from_database_over_can_add_extra_attributes() {
        let (mut u, mut s, db) = two_relation_db();
        let d = u.attr("D");
        let mut attrs = db.all_attributes();
        attrs.insert(d);
        let tableau = Tableau::from_database_over(&db, &attrs, &mut s);
        assert_eq!(tableau.attrs().len(), 4);
        assert!(s.is_fresh(tableau.get(0, d).unwrap()));
    }

    #[test]
    fn frozen_construction_matches_mutable_up_to_null_renaming() {
        let (_, mut s, db) = two_relation_db();
        let attrs = db.all_attributes();
        let frozen = {
            let mut source = s.fresh_source();
            Tableau::from_database_frozen(&db, &attrs, &mut source)
        };
        let mutable = Tableau::from_database_over(&db, &attrs, &mut s);
        // Same shape, same constants, nulls in the same cells.
        assert_eq!(frozen.num_rows(), mutable.num_rows());
        for (fr, mr) in frozen.rows().iter().zip(mutable.rows()) {
            for (&fv, &mv) in fr.iter().zip(mr) {
                assert_eq!(s.is_constant(fv), s.is_constant(mv));
                if s.is_constant(fv) {
                    assert_eq!(fv, mv);
                }
            }
        }
        // In fact both start minting at the same cursor, so they agree
        // symbol-for-symbol here.
        assert_eq!(frozen.rows(), mutable.rows());
    }

    #[test]
    fn position_and_get_handle_missing_attributes() {
        let (mut u, mut s, db) = two_relation_db();
        let tableau = Tableau::from_database(&db, &mut s);
        let z = u.attr("Z");
        assert_eq!(tableau.position(z), None);
        assert_eq!(tableau.get(0, z), None);
    }

    #[test]
    #[should_panic(expected = "one symbol per attribute")]
    fn from_rows_checks_arity() {
        let mut u = Universe::new();
        let attrs: AttrSet = u.attrs(["A", "B"]).into();
        let mut s = SymbolTable::new();
        let _ = Tableau::from_rows(attrs, vec![vec![s.symbol("a")]]);
    }
}
