//! Functional dependencies.

use std::fmt;

use ps_base::{AttrSet, Universe};

/// A functional dependency `X → Y` over a relation scheme (Section 2.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fd {
    /// Determinant `X`.
    pub lhs: AttrSet,
    /// Dependent `Y`.
    pub rhs: AttrSet,
}

impl Fd {
    /// Creates the FD `lhs → rhs`.
    ///
    /// # Panics
    /// Panics if either side is empty (the paper requires non-empty sides).
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        assert!(
            !lhs.is_empty() && !rhs.is_empty(),
            "FD sides must be non-empty"
        );
        Fd { lhs, rhs }
    }

    /// Whether the FD is trivial (`Y ⊆ X`), i.e. satisfied by every relation.
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }

    /// The set of attributes mentioned by the FD.
    pub fn attributes(&self) -> AttrSet {
        self.lhs.union(&self.rhs)
    }

    /// Splits the FD into one FD per right-hand-side attribute (the
    /// "canonical" form used by minimal covers).
    pub fn split_rhs(&self) -> Vec<Fd> {
        self.rhs
            .iter()
            .map(|a| Fd::new(self.lhs.clone(), AttrSet::singleton(a)))
            .collect()
    }

    /// Renders the FD as `X->Y` using attribute names.
    pub fn render(&self, universe: &Universe) -> String {
        format!(
            "{}->{}",
            universe.render_set(&self.lhs),
            universe.render_set(&self.rhs)
        )
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.lhs, self.rhs)
    }
}

/// Builds an FD from attribute slices (convenience for tests and examples).
pub fn fd(lhs: &[ps_base::Attribute], rhs: &[ps_base::Attribute]) -> Fd {
    Fd::new(lhs.iter().copied().collect(), rhs.iter().copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> (Universe, Vec<ps_base::Attribute>) {
        let mut u = Universe::new();
        let a = u.attrs(["A", "B", "C"]);
        (u, a)
    }

    #[test]
    fn construction_and_display() {
        let (u, a) = attrs();
        let d = fd(&[a[0], a[1]], &[a[2]]);
        assert_eq!(d.render(&u), "AB->C");
        assert!(!d.is_trivial());
        assert_eq!(d.attributes().len(), 3);
        assert!(format!("{d}").contains("->"));
    }

    #[test]
    fn trivial_fds() {
        let (_, a) = attrs();
        assert!(fd(&[a[0], a[1]], &[a[0]]).is_trivial());
        assert!(!fd(&[a[0]], &[a[0], a[1]]).is_trivial());
    }

    #[test]
    fn split_rhs_produces_singletons() {
        let (_, a) = attrs();
        let d = fd(&[a[0]], &[a[1], a[2]]);
        let split = d.split_rhs();
        assert_eq!(split.len(), 2);
        assert!(split.iter().all(|f| f.rhs.len() == 1));
        assert!(split.iter().all(|f| f.lhs == d.lhs));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sides_are_rejected() {
        let (_, a) = attrs();
        let _ = Fd::new(AttrSet::new(), AttrSet::singleton(a[0]));
    }
}
