//! Tuples over a relation scheme.

use std::fmt;

use ps_base::{Symbol, SymbolTable};

use crate::{RelationError, RelationScheme, Result};

/// A tuple over a relation scheme: one [`Symbol`] per attribute, stored in
/// the scheme's column order.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Vec<Symbol>,
}

impl Tuple {
    /// Creates a tuple from values listed in the scheme's column order.
    pub fn new(scheme: &RelationScheme, values: Vec<Symbol>) -> Result<Self> {
        if values.len() != scheme.arity() {
            return Err(RelationError::ArityMismatch {
                scheme: scheme.name().to_owned(),
                expected: scheme.arity(),
                found: values.len(),
            });
        }
        Ok(Tuple { values })
    }

    /// Creates a tuple without checking the arity (internal use).
    pub(crate) fn from_values(values: Vec<Symbol>) -> Self {
        Tuple { values }
    }

    /// The value under attribute `attr` (i.e. `t[A]`).
    pub fn get(&self, scheme: &RelationScheme, attr: ps_base::Attribute) -> Result<Symbol> {
        let pos = scheme
            .position(attr)
            .ok_or(RelationError::AttributeNotInScheme {
                scheme: scheme.name().to_owned(),
                attribute: attr,
            })?;
        Ok(self.values[pos])
    }

    /// The raw values in scheme column order.
    pub fn values(&self) -> &[Symbol] {
        &self.values
    }

    /// The restriction `t[X]` of the tuple to the attributes `X ∩ scheme`,
    /// in sorted attribute order.
    pub fn project(&self, scheme: &RelationScheme, attrs: &ps_base::AttrSet) -> Vec<Symbol> {
        attrs
            .iter()
            .filter_map(|a| scheme.position(a).map(|p| self.values[p]))
            .collect()
    }

    /// Renders the tuple using a symbol table, e.g. `(a, b1, c)`.
    pub fn render(&self, symbols: &SymbolTable) -> String {
        let parts: Vec<String> = self.values.iter().map(|&s| symbols.render(s)).collect();
        format!("({})", parts.join(", "))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_base::Universe;

    fn setup() -> (Universe, SymbolTable, RelationScheme) {
        let mut u = Universe::new();
        let attrs = u.attrs(["A", "B", "C"]);
        let scheme = RelationScheme::new("R", attrs);
        (u, SymbolTable::new(), scheme)
    }

    #[test]
    fn new_checks_arity() {
        let (_, mut syms, scheme) = setup();
        let vals = syms.symbols(["a", "b", "c"]);
        assert!(Tuple::new(&scheme, vals.clone()).is_ok());
        assert!(matches!(
            Tuple::new(&scheme, vals[..2].to_vec()),
            Err(RelationError::ArityMismatch {
                expected: 3,
                found: 2,
                ..
            })
        ));
    }

    #[test]
    fn get_and_project() {
        let (mut u, mut syms, scheme) = setup();
        let vals = syms.symbols(["a", "b", "c"]);
        let t = Tuple::new(&scheme, vals.clone()).unwrap();
        let a = u.attr("A");
        let c = u.attr("C");
        let d = u.attr("D");
        assert_eq!(t.get(&scheme, a).unwrap(), vals[0]);
        assert_eq!(t.get(&scheme, c).unwrap(), vals[2]);
        assert!(matches!(
            t.get(&scheme, d),
            Err(RelationError::AttributeNotInScheme { .. })
        ));
        let ac: ps_base::AttrSet = vec![a, c].into();
        assert_eq!(t.project(&scheme, &ac), vec![vals[0], vals[2]]);
        // Projection silently ignores attributes outside the scheme.
        let ad: ps_base::AttrSet = vec![a, d].into();
        assert_eq!(t.project(&scheme, &ad), vec![vals[0]]);
    }

    #[test]
    fn render_and_display() {
        let (_, mut syms, scheme) = setup();
        let vals = syms.symbols(["a", "b", "c"]);
        let t = Tuple::new(&scheme, vals).unwrap();
        assert_eq!(t.render(&syms), "(a, b, c)");
        assert_eq!(format!("{t}"), "($0,$1,$2)");
    }
}
