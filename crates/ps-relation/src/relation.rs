//! Relations: finite sets of tuples over a relation scheme.

use std::collections::HashSet;

use ps_base::{AttrSet, Attribute, Symbol, SymbolTable, Universe};

use crate::{Fd, Mvd, RelationError, RelationScheme, Result, Tuple};

/// A finite relation `r` over a scheme `R[U]`: a set of tuples.
///
/// Tuples are deduplicated (a relation is a *set*), and insertion order is
/// preserved for deterministic iteration and display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    scheme: RelationScheme,
    tuples: Vec<Tuple>,
    seen: HashSet<Tuple>,
}

impl Relation {
    /// Creates an empty relation over `scheme`.
    pub fn new(scheme: RelationScheme) -> Self {
        Relation {
            scheme,
            tuples: Vec::new(),
            seen: HashSet::new(),
        }
    }

    /// The relation's scheme.
    pub fn scheme(&self) -> &RelationScheme {
        &self.scheme
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was not already present.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.values().len() != self.scheme.arity() {
            return Err(RelationError::ArityMismatch {
                scheme: self.scheme.name().to_owned(),
                expected: self.scheme.arity(),
                found: tuple.values().len(),
            });
        }
        if self.seen.contains(&tuple) {
            return Ok(false);
        }
        self.seen.insert(tuple.clone());
        self.tuples.push(tuple);
        Ok(true)
    }

    /// Inserts a tuple given as a value slice in scheme column order.
    pub fn insert_values(&mut self, values: &[Symbol]) -> Result<bool> {
        self.insert(Tuple::new(&self.scheme, values.to_vec())?)
    }

    /// Whether the relation contains the tuple.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.seen.contains(tuple)
    }

    /// Iterates over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The value `t[A]` of the `idx`-th tuple.
    pub fn value(&self, idx: usize, attr: Attribute) -> Result<Symbol> {
        self.tuples[idx].get(&self.scheme, attr)
    }

    /// The projection `r[X]` onto `attrs ∩ U` (Section 2.1), as a new
    /// relation named `name`.
    pub fn project(&self, name: impl Into<String>, attrs: &AttrSet) -> Result<Relation> {
        let kept = attrs.intersection(self.scheme.attrs());
        if kept.is_empty() {
            return Err(RelationError::EmptyAttributeSet("projection"));
        }
        let scheme = RelationScheme::new(name, kept.clone());
        let mut out = Relation::new(scheme);
        for t in &self.tuples {
            let vals = t.project(&self.scheme, &kept);
            out.insert(Tuple::from_values(vals))?;
        }
        Ok(out)
    }

    /// The set of symbols appearing under attribute `attr` — the active
    /// domain of that column, written `d[A]` in the paper.
    pub fn active_domain(&self, attr: Attribute) -> Result<Vec<Symbol>> {
        let pos = self
            .scheme
            .position(attr)
            .ok_or(RelationError::AttributeNotInScheme {
                scheme: self.scheme.name().to_owned(),
                attribute: attr,
            })?;
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for t in &self.tuples {
            let v = t.values()[pos];
            if seen.insert(v) {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// Whether the relation satisfies the functional dependency `X → Y`
    /// (Section 2.1): any two tuples agreeing on `X` agree on `Y`.
    pub fn satisfies_fd(&self, fd: &Fd) -> bool {
        let lhs = &fd.lhs;
        let rhs = &fd.rhs;
        // Only attributes within the scheme participate; attributes outside
        // the scheme make the FD vacuously about the projection that exists.
        for i in 0..self.tuples.len() {
            for j in (i + 1)..self.tuples.len() {
                let ti = &self.tuples[i];
                let tj = &self.tuples[j];
                if ti.project(&self.scheme, lhs) == tj.project(&self.scheme, lhs)
                    && ti.project(&self.scheme, rhs) != tj.project(&self.scheme, rhs)
                {
                    return false;
                }
            }
        }
        true
    }

    /// Whether the relation satisfies every FD in `fds`.
    pub fn satisfies_all_fds(&self, fds: &[Fd]) -> bool {
        fds.iter().all(|fd| self.satisfies_fd(fd))
    }

    /// Whether the relation satisfies the multivalued dependency
    /// `X ↠ Y` (Section 4.2): whenever two tuples agree on `X`, the tuple
    /// combining the first's `Y`-values with the second's remaining values is
    /// also present.
    pub fn satisfies_mvd(&self, mvd: &Mvd) -> bool {
        let x = &mvd.lhs;
        let y = &mvd.rhs;
        let u = self.scheme.attrs().clone();
        let z = u.difference(&x.union(y));
        for t in &self.tuples {
            for h in &self.tuples {
                if t.project(&self.scheme, x) != h.project(&self.scheme, x) {
                    continue;
                }
                // Need a tuple w with w[X]=t[X], w[Y]=t[Y], w[Z]=h[Z].
                let exists = self.tuples.iter().any(|w| {
                    w.project(&self.scheme, x) == t.project(&self.scheme, x)
                        && w.project(&self.scheme, y) == t.project(&self.scheme, y)
                        && w.project(&self.scheme, &z) == h.project(&self.scheme, &z)
                });
                if !exists {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the relation as a small table using attribute and symbol
    /// names.
    pub fn render(&self, universe: &Universe, symbols: &SymbolTable) -> String {
        let mut out = String::new();
        out.push_str(&self.scheme.render(universe));
        out.push('\n');
        let header: Vec<String> = self
            .scheme
            .attrs()
            .iter()
            .map(|a| universe.name(a).unwrap_or("?").to_owned())
            .collect();
        out.push_str(&header.join("\t"));
        out.push('\n');
        for t in &self.tuples {
            let row: Vec<String> = t.values().iter().map(|&s| symbols.render(s)).collect();
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        universe: Universe,
        symbols: SymbolTable,
        attrs: Vec<Attribute>,
    }

    fn setup() -> Fixture {
        let mut universe = Universe::new();
        let attrs = universe.attrs(["A", "B", "C"]);
        Fixture {
            universe,
            symbols: SymbolTable::new(),
            attrs,
        }
    }

    fn relation_abc(f: &mut Fixture, rows: &[[&str; 3]]) -> Relation {
        let scheme = RelationScheme::new("R", f.attrs.clone());
        let mut r = Relation::new(scheme);
        for row in rows {
            let vals: Vec<Symbol> = row.iter().map(|s| f.symbols.symbol(s)).collect();
            r.insert_values(&vals).unwrap();
        }
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut f = setup();
        let mut r = relation_abc(&mut f, &[["a", "b", "c"]]);
        let vals: Vec<Symbol> = ["a", "b", "c"]
            .iter()
            .map(|s| f.symbols.symbol(s))
            .collect();
        assert!(!r.insert_values(&vals).unwrap());
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert!(r.contains(&Tuple::new(r.scheme(), vals).unwrap()));
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut f = setup();
        let mut r = relation_abc(&mut f, &[]);
        let vals: Vec<Symbol> = ["a", "b"].iter().map(|s| f.symbols.symbol(s)).collect();
        assert!(matches!(
            r.insert_values(&vals),
            Err(RelationError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn projection_and_active_domain() {
        let mut f = setup();
        let r = relation_abc(
            &mut f,
            &[["a", "b", "c"], ["a", "b2", "c"], ["a2", "b", "c1"]],
        );
        let ab: AttrSet = vec![f.attrs[0], f.attrs[1]].into();
        let proj = r.project("P", &ab).unwrap();
        assert_eq!(proj.len(), 3);
        assert_eq!(proj.scheme().arity(), 2);
        let a_dom = r.active_domain(f.attrs[0]).unwrap();
        assert_eq!(a_dom.len(), 2);
        let c_dom = r.active_domain(f.attrs[2]).unwrap();
        assert_eq!(c_dom.len(), 2);
        // Projection onto an attribute outside the scheme is empty → error.
        let mut u2 = f.universe.clone();
        let d = u2.attr("D");
        assert!(r.project("P", &AttrSet::singleton(d)).is_err());
        assert!(r.active_domain(d).is_err());
    }

    #[test]
    fn projection_deduplicates_tuples() {
        let mut f = setup();
        let r = relation_abc(&mut f, &[["a", "b", "c"], ["a", "b", "c2"]]);
        let ab: AttrSet = vec![f.attrs[0], f.attrs[1]].into();
        assert_eq!(r.project("P", &ab).unwrap().len(), 1);
    }

    #[test]
    fn fd_satisfaction() {
        let mut f = setup();
        let r = relation_abc(
            &mut f,
            &[["a", "b", "c"], ["a", "b", "c2"], ["a2", "b2", "c"]],
        );
        let a_to_b = Fd::new(
            AttrSet::singleton(f.attrs[0]),
            AttrSet::singleton(f.attrs[1]),
        );
        let a_to_c = Fd::new(
            AttrSet::singleton(f.attrs[0]),
            AttrSet::singleton(f.attrs[2]),
        );
        assert!(r.satisfies_fd(&a_to_b));
        assert!(!r.satisfies_fd(&a_to_c));
        assert!(!r.satisfies_all_fds(&[a_to_b, a_to_c]));
    }

    #[test]
    fn mvd_satisfaction_figure2() {
        // Figure 2: r1 satisfies A ↠ B, r2 does not.
        let mut f = setup();
        let r1 = relation_abc(
            &mut f,
            &[
                ["a", "b1", "c1"],
                ["a", "b1", "c2"],
                ["a", "b2", "c1"],
                ["a", "b2", "c2"],
            ],
        );
        let r2 = relation_abc(
            &mut f,
            &[["a", "b1", "c1"], ["a", "b2", "c2"], ["a", "b1", "c2"]],
        );
        let mvd = Mvd::new(
            AttrSet::singleton(f.attrs[0]),
            AttrSet::singleton(f.attrs[1]),
        );
        assert!(r1.satisfies_mvd(&mvd));
        assert!(!r2.satisfies_mvd(&mvd));
    }

    #[test]
    fn render_contains_header_and_rows() {
        let mut f = setup();
        let r = relation_abc(&mut f, &[["a", "b", "c"]]);
        let rendered = r.render(&f.universe, &f.symbols);
        assert!(rendered.contains("R[ABC]"));
        assert!(rendered.contains("A\tB\tC"));
        assert!(rendered.contains("a\tb\tc"));
    }

    #[test]
    fn value_accessor() {
        let mut f = setup();
        let r = relation_abc(&mut f, &[["a", "b", "c"]]);
        let b = f.symbols.lookup("b").unwrap();
        assert_eq!(r.value(0, f.attrs[1]).unwrap(), b);
    }
}
