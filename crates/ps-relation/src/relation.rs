//! Relations: finite sets of tuples over a relation scheme, stored columnar.
//!
//! A [`Relation`] keeps one `Vec<Symbol>` per attribute (column-major
//! storage) plus a single row-hash dedup index.  Row `i` is the slice
//! `columns[0][i], …, columns[arity-1][i]`; no tuple is ever stored twice
//! (the index holds row ids, not copies).  Callers that need row shape get
//! zero-copy [`RowRef`] views from [`Relation::iter`] / [`Relation::row`];
//! the bulk operations ([`Relation::project`], [`Relation::active_domain`],
//! [`Relation::satisfies_fd`], [`Relation::satisfies_mvd`]) walk columns
//! directly and are linear (hash-grouped) rather than quadratic rescans.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};

use ps_base::{AttrSet, Attribute, Symbol, SymbolTable, Universe};

use crate::{Fd, Mvd, RelationError, RelationScheme, Result, Tuple};

/// A finite relation `r` over a scheme `R[U]`: a set of tuples.
///
/// Tuples are deduplicated (a relation is a *set*), and insertion order is
/// preserved for deterministic iteration and display.  Storage is columnar:
/// one symbol vector per attribute plus a row-hash index — each row's
/// symbols are stored exactly once.
#[derive(Debug, Clone)]
pub struct Relation {
    scheme: RelationScheme,
    /// One value vector per attribute, in scheme column order; all columns
    /// have the same length (the number of rows).
    columns: Vec<Vec<Symbol>>,
    /// Dedup index: hash of a row's symbols → ids of rows with that hash
    /// (almost always one; collisions are resolved by comparing cells).
    index: HashMap<u64, Vec<u32>>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        // The index is derived from the columns; equality is scheme + rows
        // in insertion order (the same notion the row-oriented kernel had).
        self.scheme == other.scheme && self.columns == other.columns
    }
}

impl Eq for Relation {}

fn hash_row(values: &[Symbol]) -> u64 {
    let mut hasher = DefaultHasher::new();
    for v in values {
        v.hash(&mut hasher);
    }
    hasher.finish()
}

impl Relation {
    /// Creates an empty relation over `scheme`.
    pub fn new(scheme: RelationScheme) -> Self {
        let arity = scheme.arity();
        Relation {
            scheme,
            columns: vec![Vec::new(); arity],
            index: HashMap::new(),
        }
    }

    /// The relation's scheme.
    pub fn scheme(&self) -> &RelationScheme {
        &self.scheme
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.columns[0].len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.columns[0].is_empty()
    }

    /// Total number of symbol cells stored (`arity × len`).
    ///
    /// This is exactly the information content of the relation: the columnar
    /// kernel stores every row once, with the dedup index holding row *ids*
    /// rather than copies.  The regression test `single_storage_of_rows`
    /// pins this so a second full copy of the tuples (as the old
    /// `Vec<Tuple>` + `HashSet<Tuple>` layout had) cannot sneak back in.
    pub fn storage_cells(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// The column of values under the `pos`-th attribute of the scheme.
    pub fn column(&self, pos: usize) -> &[Symbol] {
        &self.columns[pos]
    }

    /// The column of values under `attr`.
    pub fn column_of(&self, attr: Attribute) -> Result<&[Symbol]> {
        let pos = self
            .scheme
            .position(attr)
            .ok_or(RelationError::AttributeNotInScheme {
                scheme: self.scheme.name().to_owned(),
                attribute: attr,
            })?;
        Ok(&self.columns[pos])
    }

    /// Inserts a tuple; returns `true` if it was not already present.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.insert_values(tuple.values())
    }

    /// Inserts a tuple given as a value slice in scheme column order;
    /// returns `true` if it was not already present.
    pub fn insert_values(&mut self, values: &[Symbol]) -> Result<bool> {
        if values.len() != self.scheme.arity() {
            return Err(RelationError::ArityMismatch {
                scheme: self.scheme.name().to_owned(),
                expected: self.scheme.arity(),
                found: values.len(),
            });
        }
        let hash = hash_row(values);
        let bucket = self.index.entry(hash).or_default();
        if bucket.is_empty() {
            // Fast path: fresh hash, certainly a new row.
        } else if bucket
            .iter()
            .any(|&idx| columns_match(&self.columns, idx, values))
        {
            return Ok(false);
        }
        let idx = self.columns[0].len() as u32;
        bucket.push(idx);
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.push(v);
        }
        Ok(true)
    }

    /// Whether the relation contains the tuple.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.contains_values(tuple.values())
    }

    /// Whether the relation contains the row given as a value slice in
    /// scheme column order (slices of the wrong arity are never contained).
    pub fn contains_values(&self, values: &[Symbol]) -> bool {
        if values.len() != self.scheme.arity() {
            return false;
        }
        match self.index.get(&hash_row(values)) {
            None => false,
            Some(bucket) => bucket
                .iter()
                .any(|&idx| columns_match(&self.columns, idx, values)),
        }
    }

    /// Whether the relation contains the row viewed by `row` (which may
    /// belong to a different relation over an equal-arity scheme).
    pub fn contains_row(&self, row: RowRef<'_>) -> bool {
        self.contains_values(&row.to_values())
    }

    /// Iterates over the rows in insertion order, as zero-copy views.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = RowRef<'_>> {
        (0..self.len()).map(move |idx| RowRef {
            relation: self,
            idx,
        })
    }

    /// A zero-copy view of the `idx`-th row.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn row(&self, idx: usize) -> RowRef<'_> {
        assert!(idx < self.len(), "row index {idx} out of range");
        RowRef {
            relation: self,
            idx,
        }
    }

    /// The `idx`-th row materialized as a value vector in scheme column
    /// order.
    pub fn row_values(&self, idx: usize) -> Vec<Symbol> {
        self.columns.iter().map(|col| col[idx]).collect()
    }

    /// The value `t[A]` of the `idx`-th tuple.
    pub fn value(&self, idx: usize, attr: Attribute) -> Result<Symbol> {
        Ok(self.column_of(attr)?[idx])
    }

    /// The projection `r[X]` onto `attrs ∩ U` (Section 2.1), as a new
    /// relation named `name`.
    pub fn project(&self, name: impl Into<String>, attrs: &AttrSet) -> Result<Relation> {
        let kept = attrs.intersection(self.scheme.attrs());
        if kept.is_empty() {
            return Err(RelationError::EmptyAttributeSet("projection"));
        }
        let positions: Vec<usize> = kept
            .iter()
            .map(|a| self.scheme.position(a).expect("kept ⊆ scheme"))
            .collect();
        let scheme = RelationScheme::new(name, kept);
        let mut out = Relation::new(scheme);
        let mut buffer = vec![Symbol::from_index(0); positions.len()];
        for idx in 0..self.len() {
            for (slot, &pos) in buffer.iter_mut().zip(&positions) {
                *slot = self.columns[pos][idx];
            }
            out.insert_values(&buffer)?;
        }
        Ok(out)
    }

    /// The set of symbols appearing under attribute `attr` — the active
    /// domain of that column, written `d[A]` in the paper.  One column walk.
    pub fn active_domain(&self, attr: Attribute) -> Result<Vec<Symbol>> {
        let column = self.column_of(attr)?;
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for &v in column {
            if seen.insert(v) {
                out.push(v);
            }
        }
        Ok(out)
    }

    /// The column indices of `attrs ∩ U`, in sorted attribute order.
    fn positions_of(&self, attrs: &AttrSet) -> Vec<usize> {
        attrs
            .iter()
            .filter_map(|a| self.scheme.position(a))
            .collect()
    }

    /// Gathers the `positions` entries of row `idx` into `buffer`.
    fn gather(&self, idx: usize, positions: &[usize], buffer: &mut Vec<Symbol>) {
        buffer.clear();
        buffer.extend(positions.iter().map(|&p| self.columns[p][idx]));
    }

    /// Whether the relation satisfies the functional dependency `X → Y`
    /// (Section 2.1): any two tuples agreeing on `X` agree on `Y`.
    ///
    /// One hash-grouped pass over the columns: rows are bucketed by their
    /// `X`-values and each bucket must carry a single `Y`-value.  Attributes
    /// outside the scheme do not participate (the FD constrains the
    /// projection that exists), exactly as in the quadratic reference.
    pub fn satisfies_fd(&self, fd: &Fd) -> bool {
        let lhs = self.positions_of(&fd.lhs);
        let rhs = self.positions_of(&fd.rhs);
        let mut witness: HashMap<Vec<Symbol>, Vec<Symbol>> = HashMap::new();
        let mut key = Vec::with_capacity(lhs.len());
        let mut val = Vec::with_capacity(rhs.len());
        for idx in 0..self.len() {
            self.gather(idx, &lhs, &mut key);
            self.gather(idx, &rhs, &mut val);
            match witness.get(&key) {
                None => {
                    witness.insert(key.clone(), val.clone());
                }
                Some(existing) => {
                    if existing != &val {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Whether the relation satisfies every FD in `fds`.
    pub fn satisfies_all_fds(&self, fds: &[Fd]) -> bool {
        fds.iter().all(|fd| self.satisfies_fd(fd))
    }

    /// Whether the relation satisfies the multivalued dependency
    /// `X ↠ Y` (Section 4.2): whenever two tuples agree on `X`, the tuple
    /// combining the first's `Y`-values with the second's remaining values is
    /// also present.
    ///
    /// Hash-grouped: rows are bucketed by `X`-value; a bucket satisfies the
    /// MVD iff its set of `(Y, Z)` pairs is the full product of its `Y`-set
    /// and its `Z`-set (`Z = U − XY`), which the cardinality check
    /// `|pairs| = |Y-set| · |Z-set|` decides without materializing the
    /// product.
    pub fn satisfies_mvd(&self, mvd: &Mvd) -> bool {
        let x_cols = self.positions_of(&mvd.lhs);
        let y_cols = self.positions_of(&mvd.rhs);
        let z_attrs = self.scheme.attrs().difference(&mvd.lhs.union(&mvd.rhs));
        let z_cols = self.positions_of(&z_attrs);

        struct Group {
            pairs: HashSet<(Vec<Symbol>, Vec<Symbol>)>,
            ys: HashSet<Vec<Symbol>>,
            zs: HashSet<Vec<Symbol>>,
        }
        let mut groups: HashMap<Vec<Symbol>, Group> = HashMap::new();
        let mut x_key = Vec::with_capacity(x_cols.len());
        for idx in 0..self.len() {
            self.gather(idx, &x_cols, &mut x_key);
            let mut y_key = Vec::with_capacity(y_cols.len());
            let mut z_key = Vec::with_capacity(z_cols.len());
            y_key.extend(y_cols.iter().map(|&p| self.columns[p][idx]));
            z_key.extend(z_cols.iter().map(|&p| self.columns[p][idx]));
            let group = groups.entry(x_key.clone()).or_insert_with(|| Group {
                pairs: HashSet::new(),
                ys: HashSet::new(),
                zs: HashSet::new(),
            });
            group.ys.insert(y_key.clone());
            group.zs.insert(z_key.clone());
            group.pairs.insert((y_key, z_key));
        }
        groups
            .values()
            .all(|g| g.pairs.len() == g.ys.len() * g.zs.len())
    }

    /// Renders the relation as a small table using attribute and symbol
    /// names.
    pub fn render(&self, universe: &Universe, symbols: &SymbolTable) -> String {
        let mut out = String::new();
        out.push_str(&self.scheme.render(universe));
        out.push('\n');
        let header: Vec<String> = self
            .scheme
            .attrs()
            .iter()
            .map(|a| universe.name(a).unwrap_or("?").to_owned())
            .collect();
        out.push_str(&header.join("\t"));
        out.push('\n');
        for idx in 0..self.len() {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|col| symbols.render(col[idx]))
                .collect();
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }
}

fn columns_match(columns: &[Vec<Symbol>], idx: u32, values: &[Symbol]) -> bool {
    columns
        .iter()
        .zip(values)
        .all(|(col, &v)| col[idx as usize] == v)
}

/// A zero-copy view of one row of a [`Relation`].
///
/// The view borrows the relation's columnar storage; no symbols are copied
/// until a caller asks for row shape via [`RowRef::to_values`] or
/// [`RowRef::to_tuple`].  The view knows its relation's scheme, so
/// attribute-addressed access needs no scheme argument.
#[derive(Clone, Copy)]
pub struct RowRef<'a> {
    relation: &'a Relation,
    idx: usize,
}

impl<'a> RowRef<'a> {
    /// The relation this row belongs to.
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// The row's index within its relation (insertion order).
    pub fn index(&self) -> usize {
        self.idx
    }

    /// Number of values in the row.
    pub fn arity(&self) -> usize {
        self.relation.scheme.arity()
    }

    /// The value in the `pos`-th column.
    pub fn value_at(&self, pos: usize) -> Symbol {
        self.relation.columns[pos][self.idx]
    }

    /// The value `t[A]` under attribute `attr`.
    pub fn get(&self, attr: Attribute) -> Result<Symbol> {
        self.relation.value(self.idx, attr)
    }

    /// The restriction `t[X]` of the row to the attributes `X ∩ scheme`, in
    /// sorted attribute order.
    pub fn project(&self, attrs: &AttrSet) -> Vec<Symbol> {
        attrs
            .iter()
            .filter_map(|a| self.relation.scheme.position(a))
            .map(|p| self.relation.columns[p][self.idx])
            .collect()
    }

    /// Iterates over the row's values in scheme column order.
    pub fn values(&self) -> impl Iterator<Item = Symbol> + 'a {
        let (relation, idx) = (self.relation, self.idx);
        relation.columns.iter().map(move |col| col[idx])
    }

    /// The row materialized as a value vector in scheme column order.
    pub fn to_values(&self) -> Vec<Symbol> {
        self.relation.row_values(self.idx)
    }

    /// The row materialized as an owned [`Tuple`].
    pub fn to_tuple(&self) -> Tuple {
        Tuple::from_values(self.to_values())
    }

    /// Renders the row using a symbol table, e.g. `(a, b1, c)`.
    pub fn render(&self, symbols: &SymbolTable) -> String {
        let parts: Vec<String> = self.values().map(|s| symbols.render(s)).collect();
        format!("({})", parts.join(", "))
    }
}

impl fmt::Debug for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RowRef")
            .field("idx", &self.idx)
            .field("values", &self.to_values())
            .finish()
    }
}

impl fmt::Display for RowRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        universe: Universe,
        symbols: SymbolTable,
        attrs: Vec<Attribute>,
    }

    fn setup() -> Fixture {
        let mut universe = Universe::new();
        let attrs = universe.attrs(["A", "B", "C"]);
        Fixture {
            universe,
            symbols: SymbolTable::new(),
            attrs,
        }
    }

    fn relation_abc(f: &mut Fixture, rows: &[[&str; 3]]) -> Relation {
        let scheme = RelationScheme::new("R", f.attrs.clone());
        let mut r = Relation::new(scheme);
        for row in rows {
            let vals: Vec<Symbol> = row.iter().map(|s| f.symbols.symbol(s)).collect();
            r.insert_values(&vals).unwrap();
        }
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut f = setup();
        let mut r = relation_abc(&mut f, &[["a", "b", "c"]]);
        let vals: Vec<Symbol> = ["a", "b", "c"]
            .iter()
            .map(|s| f.symbols.symbol(s))
            .collect();
        assert!(!r.insert_values(&vals).unwrap());
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert!(r.contains(&Tuple::new(r.scheme(), vals).unwrap()));
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut f = setup();
        let mut r = relation_abc(&mut f, &[]);
        let vals: Vec<Symbol> = ["a", "b"].iter().map(|s| f.symbols.symbol(s)).collect();
        assert!(matches!(
            r.insert_values(&vals),
            Err(RelationError::ArityMismatch { .. })
        ));
        // Wrong-arity rows are never contained (rather than erroring).
        assert!(!r.contains_values(&vals));
    }

    /// The satellite regression guard for the old double-storage layout
    /// (`tuples: Vec<Tuple>` plus `seen: HashSet<Tuple>`, each owning a full
    /// copy of every row): the columnar kernel stores exactly `arity × len`
    /// symbol cells, not twice that.
    #[test]
    fn single_storage_of_rows() {
        let mut f = setup();
        let r = relation_abc(
            &mut f,
            &[["a", "b", "c"], ["a", "b2", "c"], ["a2", "b", "c1"]],
        );
        assert_eq!(r.storage_cells(), r.scheme().arity() * r.len());
        // Duplicate inserts change neither the row count nor the cell count.
        let mut r2 = r.clone();
        let vals: Vec<Symbol> = ["a", "b", "c"]
            .iter()
            .map(|s| f.symbols.symbol(s))
            .collect();
        assert!(!r2.insert_values(&vals).unwrap());
        assert_eq!(r2.storage_cells(), r.storage_cells());
        assert_eq!(r2.len(), r.len());
    }

    #[test]
    fn row_views_expose_values_and_projections() {
        let mut f = setup();
        let r = relation_abc(&mut f, &[["a", "b", "c"], ["a2", "b2", "c2"]]);
        let row = r.row(1);
        assert_eq!(row.index(), 1);
        assert_eq!(row.arity(), 3);
        assert_eq!(row.value_at(0), f.symbols.lookup("a2").unwrap());
        assert_eq!(
            row.get(f.attrs[1]).unwrap(),
            f.symbols.lookup("b2").unwrap()
        );
        assert!(row.get(Attribute::from_index(99)).is_err());
        let ac: AttrSet = vec![f.attrs[0], f.attrs[2]].into();
        assert_eq!(
            row.project(&ac),
            vec![
                f.symbols.lookup("a2").unwrap(),
                f.symbols.lookup("c2").unwrap()
            ]
        );
        assert_eq!(row.to_values(), r.row_values(1));
        assert_eq!(row.to_tuple().values(), r.row_values(1).as_slice());
        assert_eq!(row.values().count(), 3);
        assert!(r.contains_row(row));
        assert_eq!(row.render(&f.symbols), "(a2, b2, c2)");
        assert_eq!(format!("{row}"), format!("{}", row.to_tuple()));
        assert!(format!("{row:?}").contains("idx"));
        assert_eq!(row.relation().len(), 2);
    }

    #[test]
    fn columns_are_directly_addressable() {
        let mut f = setup();
        let r = relation_abc(&mut f, &[["a", "b", "c"], ["a2", "b", "c"]]);
        assert_eq!(r.column(1), r.column_of(f.attrs[1]).unwrap());
        assert_eq!(r.column(0).len(), 2);
        let mut u2 = f.universe.clone();
        let d = u2.attr("D");
        assert!(r.column_of(d).is_err());
    }

    #[test]
    fn projection_and_active_domain() {
        let mut f = setup();
        let r = relation_abc(
            &mut f,
            &[["a", "b", "c"], ["a", "b2", "c"], ["a2", "b", "c1"]],
        );
        let ab: AttrSet = vec![f.attrs[0], f.attrs[1]].into();
        let proj = r.project("P", &ab).unwrap();
        assert_eq!(proj.len(), 3);
        assert_eq!(proj.scheme().arity(), 2);
        let a_dom = r.active_domain(f.attrs[0]).unwrap();
        assert_eq!(a_dom.len(), 2);
        let c_dom = r.active_domain(f.attrs[2]).unwrap();
        assert_eq!(c_dom.len(), 2);
        // Projection onto an attribute outside the scheme is empty → error.
        let mut u2 = f.universe.clone();
        let d = u2.attr("D");
        assert!(r.project("P", &AttrSet::singleton(d)).is_err());
        assert!(r.active_domain(d).is_err());
    }

    #[test]
    fn projection_deduplicates_tuples() {
        let mut f = setup();
        let r = relation_abc(&mut f, &[["a", "b", "c"], ["a", "b", "c2"]]);
        let ab: AttrSet = vec![f.attrs[0], f.attrs[1]].into();
        assert_eq!(r.project("P", &ab).unwrap().len(), 1);
    }

    #[test]
    fn fd_satisfaction() {
        let mut f = setup();
        let r = relation_abc(
            &mut f,
            &[["a", "b", "c"], ["a", "b", "c2"], ["a2", "b2", "c"]],
        );
        let a_to_b = Fd::new(
            AttrSet::singleton(f.attrs[0]),
            AttrSet::singleton(f.attrs[1]),
        );
        let a_to_c = Fd::new(
            AttrSet::singleton(f.attrs[0]),
            AttrSet::singleton(f.attrs[2]),
        );
        assert!(r.satisfies_fd(&a_to_b));
        assert!(!r.satisfies_fd(&a_to_c));
        assert!(!r.satisfies_all_fds(&[a_to_b, a_to_c]));
    }

    #[test]
    fn mvd_satisfaction_figure2() {
        // Figure 2: r1 satisfies A ↠ B, r2 does not.
        let mut f = setup();
        let r1 = relation_abc(
            &mut f,
            &[
                ["a", "b1", "c1"],
                ["a", "b1", "c2"],
                ["a", "b2", "c1"],
                ["a", "b2", "c2"],
            ],
        );
        let r2 = relation_abc(
            &mut f,
            &[["a", "b1", "c1"], ["a", "b2", "c2"], ["a", "b1", "c2"]],
        );
        let mvd = Mvd::new(
            AttrSet::singleton(f.attrs[0]),
            AttrSet::singleton(f.attrs[1]),
        );
        assert!(r1.satisfies_mvd(&mvd));
        assert!(!r2.satisfies_mvd(&mvd));
    }

    #[test]
    fn render_contains_header_and_rows() {
        let mut f = setup();
        let r = relation_abc(&mut f, &[["a", "b", "c"]]);
        let rendered = r.render(&f.universe, &f.symbols);
        assert!(rendered.contains("R[ABC]"));
        assert!(rendered.contains("A\tB\tC"));
        assert!(rendered.contains("a\tb\tc"));
    }

    #[test]
    fn value_accessor() {
        let mut f = setup();
        let r = relation_abc(&mut f, &[["a", "b", "c"]]);
        let b = f.symbols.lookup("b").unwrap();
        assert_eq!(r.value(0, f.attrs[1]).unwrap(), b);
    }
}
