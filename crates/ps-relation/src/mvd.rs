//! Multivalued dependencies.
//!
//! Theorem 5 of the paper shows that even the simplest MVD cannot be
//! expressed by any set of partition dependencies; this module provides the
//! MVD type and its standard relational satisfaction (checked by
//! [`crate::Relation::satisfies_mvd`]), which the reproduction of Figure 2
//! uses.

use std::fmt;

use ps_base::{AttrSet, Universe};

/// A multivalued dependency `X ↠ Y` (written here `X ->> Y`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mvd {
    /// Determinant `X`.
    pub lhs: AttrSet,
    /// Dependent `Y`.
    pub rhs: AttrSet,
}

impl Mvd {
    /// Creates the MVD `lhs ↠ rhs`.
    ///
    /// # Panics
    /// Panics if either side is empty.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        assert!(
            !lhs.is_empty() && !rhs.is_empty(),
            "MVD sides must be non-empty"
        );
        Mvd { lhs, rhs }
    }

    /// The attributes mentioned by the MVD.
    pub fn attributes(&self) -> AttrSet {
        self.lhs.union(&self.rhs)
    }

    /// Renders the MVD as `X->>Y` using attribute names.
    pub fn render(&self, universe: &Universe) -> String {
        format!(
            "{}->>{}",
            universe.render_set(&self.lhs),
            universe.render_set(&self.rhs)
        )
    }
}

impl fmt::Display for Mvd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->>{}", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_rendering() {
        let mut u = Universe::new();
        let a = u.attrs(["A", "B"]);
        let mvd = Mvd::new(AttrSet::singleton(a[0]), AttrSet::singleton(a[1]));
        assert_eq!(mvd.render(&u), "A->>B");
        assert_eq!(mvd.attributes().len(), 2);
        assert!(format!("{mvd}").contains("->>"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sides_rejected() {
        let mut u = Universe::new();
        let a = u.attr("A");
        let _ = Mvd::new(AttrSet::new(), AttrSet::singleton(a));
    }
}
