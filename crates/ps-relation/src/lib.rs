//! # ps-relation
//!
//! The relational-database substrate used by *partition semantics for
//! relations* (Section 2.1 of the paper): relation schemes, relations,
//! databases, functional and multivalued dependencies, weak instances and
//! the chase-based weak-satisfaction test of Honeyman.
//!
//! The crate is self-contained (it does not know about partitions); the
//! `ps-core` crate bridges it to partition interpretations via the canonical
//! constructions of Section 4.
//!
//! Main types:
//!
//! * [`RelationScheme`], [`Relation`], [`Database`] — schemes `R[U]`, finite
//!   relations over them and databases `d = {r₁, …, r_n}`.  Relations are
//!   stored columnar (one `Vec<Symbol>` per attribute plus a row-hash dedup
//!   index); [`RowRef`] gives zero-copy row views.
//! * [`Tuple`] — an owned tuple over a scheme, stored in the scheme's
//!   attribute order (the row-shaped construction/interchange type).
//! * [`Fd`] / [`fd_closure`] — functional dependencies, Armstrong attribute
//!   closure (both the naïve and the linear-time Beeri–Bernstein variants),
//!   implication, minimal covers and candidate keys.
//! * [`Mvd`] — multivalued dependencies (needed for Theorem 5).
//! * [`algebra`] — the relational-algebra operations the paper's conclusion
//!   points out remain available under partition semantics.
//! * [`Tableau`], [`chase`] — the weak-instance machinery: build a tableau
//!   from a database, chase it with FDs (indexed worklist engine, with the
//!   full-rescan loop kept as [`chase_fds_naive`]), detect inconsistency,
//!   extract a representative weak instance.
//! * [`consistency`] — consistency of a database with a set of FDs under the
//!   weak instance assumption (polynomial, Section 6.2) and under the
//!   complete-atomic-data assumption (NP-complete, Section 6.1; exact
//!   backtracking solver for small instances).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod chase;
pub mod consistency;
mod database;
mod error;
mod fd;
pub mod fd_closure;
mod mvd;
mod relation;
mod schema;
mod tableau;
mod tuple;

pub use chase::{
    canonical_chase_rows, chase_fds, chase_fds_naive, chase_fds_over, chase_fds_over_frozen,
    chase_fds_over_with, chase_fds_with, chase_tableau, chase_tableau_naive, chase_tableau_with,
    ChaseOutcome, ChaseScratch,
};
pub use consistency::{cad_consistent, weak_instance_consistent, CadOutcome, CadSearchStats};
pub use database::{Database, DatabaseBuilder};
pub use error::RelationError;
pub use fd::{fd, Fd};
pub use mvd::Mvd;
pub use relation::{Relation, RowRef};
pub use schema::{DatabaseScheme, RelationScheme};
pub use tableau::Tableau;
pub use tuple::Tuple;

/// Convenient `Result` alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, RelationError>;
