//! The chase with functional dependencies (Honeyman's weak-satisfaction
//! test).
//!
//! Given a database `d` and a set of FDs `Σ` over the union `U` of its
//! attributes, `d` is *consistent with `Σ` under the weak instance
//! assumption* iff there is a weak instance for `d` satisfying `Σ`
//! (Section 2.1).  The test builds the padded tableau of `d`
//! ([`crate::Tableau`]) and repeatedly applies the FDs: whenever two rows
//! agree on `X`, their `Y`-entries are equated.  Equating two *distinct
//! constants* is a contradiction; otherwise the chase terminates with a
//! representative weak instance.
//!
//! This is the polynomial-time workhorse behind Theorems 6, 7 and 12 of the
//! paper (experiment E5).

use std::collections::HashMap;

use ps_base::{AttrSet, Symbol, SymbolTable};

use crate::{Database, Fd, Relation, RelationScheme, Tableau};

/// The outcome of chasing a tableau with FDs.
#[derive(Debug, Clone)]
pub struct ChaseOutcome {
    /// Whether the chase finished without equating two distinct constants.
    pub consistent: bool,
    /// Number of equate operations performed.
    pub steps: usize,
    /// Number of passes over the FD set.
    pub rounds: usize,
    /// If consistent, the chased tableau rows with every symbol replaced by
    /// its representative.
    pub rows: Option<Vec<Vec<Symbol>>>,
}

impl ChaseOutcome {
    /// Converts the chased rows into a representative weak-instance relation
    /// over `attrs` named `name`.  Returns `None` if the chase found an
    /// inconsistency.
    pub fn weak_instance(&self, name: &str, attrs: &AttrSet) -> Option<Relation> {
        let rows = self.rows.as_ref()?;
        let scheme = RelationScheme::new(name, attrs.clone());
        let mut relation = Relation::new(scheme);
        for row in rows {
            relation
                .insert_values(row)
                .expect("chased rows match the attribute set");
        }
        Some(relation)
    }
}

/// Union–find over symbols in which constants can never be merged with each
/// other.
struct SymbolClasses<'a> {
    parent: HashMap<Symbol, Symbol>,
    symbols: &'a SymbolTable,
}

impl<'a> SymbolClasses<'a> {
    fn new(symbols: &'a SymbolTable) -> Self {
        SymbolClasses {
            parent: HashMap::new(),
            symbols,
        }
    }

    fn find(&mut self, s: Symbol) -> Symbol {
        let p = *self.parent.get(&s).unwrap_or(&s);
        if p == s {
            return s;
        }
        let root = self.find(p);
        self.parent.insert(s, root);
        root
    }

    /// Merges the classes of `a` and `b`.  Returns `Ok(true)` if a merge
    /// happened, `Ok(false)` if they were already equal, and `Err(())` if
    /// both classes are rooted at distinct constants.
    fn union(&mut self, a: Symbol, b: Symbol) -> Result<bool, ()> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return Ok(false);
        }
        match (self.symbols.is_constant(ra), self.symbols.is_constant(rb)) {
            (true, true) => Err(()),
            (true, false) => {
                self.parent.insert(rb, ra);
                Ok(true)
            }
            _ => {
                // rb is a constant (keep it as root) or both are nulls.
                self.parent.insert(ra, rb);
                Ok(true)
            }
        }
    }
}

/// Chases `tableau` with `fds`.  `symbols` is used only to distinguish
/// constants from nulls.
pub fn chase_tableau(tableau: &Tableau, fds: &[Fd], symbols: &SymbolTable) -> ChaseOutcome {
    let mut classes = SymbolClasses::new(symbols);
    let mut steps = 0usize;
    let mut rounds = 0usize;

    // Pre-compute, for each FD, the column indices of its lhs/rhs attributes
    // that actually occur in the tableau.
    let fd_columns: Vec<(Vec<usize>, Vec<usize>)> = fds
        .iter()
        .map(|fd| {
            let lhs: Vec<usize> = fd.lhs.iter().filter_map(|a| tableau.position(a)).collect();
            let rhs: Vec<usize> = fd.rhs.iter().filter_map(|a| tableau.position(a)).collect();
            (lhs, rhs)
        })
        .collect();

    loop {
        rounds += 1;
        let mut changed = false;
        for (fd_idx, fd) in fds.iter().enumerate() {
            let (lhs_cols, rhs_cols) = &fd_columns[fd_idx];
            // If some lhs attribute is missing from the tableau entirely the
            // FD can never fire (no two rows can agree on a column that does
            // not exist); skip it.
            if lhs_cols.len() != fd.lhs.len() {
                continue;
            }
            // Group rows by the representative vector of their lhs columns.
            let mut groups: HashMap<Vec<Symbol>, usize> = HashMap::new();
            for (row_idx, row) in tableau.rows().iter().enumerate() {
                let key: Vec<Symbol> = lhs_cols.iter().map(|&c| classes.find(row[c])).collect();
                match groups.get(&key) {
                    None => {
                        groups.insert(key, row_idx);
                    }
                    Some(&leader) => {
                        // Equate the rhs entries of `row_idx` with the leader's.
                        for &c in rhs_cols {
                            let a = tableau.rows()[leader][c];
                            let b = row[c];
                            match classes.union(a, b) {
                                Ok(true) => {
                                    steps += 1;
                                    changed = true;
                                }
                                Ok(false) => {}
                                Err(()) => {
                                    return ChaseOutcome {
                                        consistent: false,
                                        steps,
                                        rounds,
                                        rows: None,
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let rows = tableau
        .rows()
        .iter()
        .map(|row| row.iter().map(|&s| classes.find(s)).collect())
        .collect();
    ChaseOutcome {
        consistent: true,
        steps,
        rounds,
        rows: Some(rows),
    }
}

/// Chases the padded tableau of `db` with `fds` over the union of the
/// database's attributes (Honeyman's test).
pub fn chase_fds(db: &Database, fds: &[Fd], symbols: &mut SymbolTable) -> ChaseOutcome {
    let tableau = Tableau::from_database(db, symbols);
    chase_tableau(&tableau, fds, symbols)
}

/// Chases the padded tableau of `db` over an explicit attribute universe
/// (which may strictly contain the database's own attributes, as happens in
/// the Section 6.2 pipeline where constraints introduce new attributes).
pub fn chase_fds_over(
    db: &Database,
    attrs: &AttrSet,
    fds: &[Fd],
    symbols: &mut SymbolTable,
) -> ChaseOutcome {
    let tableau = Tableau::from_database_over(db, attrs, symbols);
    chase_tableau(&tableau, fds, symbols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::fd::fd;
    use ps_base::Universe;

    struct Fixture {
        universe: Universe,
        symbols: SymbolTable,
    }

    fn fixture() -> Fixture {
        Fixture {
            universe: Universe::new(),
            symbols: SymbolTable::new(),
        }
    }

    #[test]
    fn consistent_database_produces_a_weak_instance() {
        let mut f = fixture();
        // R1[AB], R2[BC] with B→C; consistent.
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "B"],
                &[&["a1", "b"], &["a2", "b"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R2",
                &["B", "C"],
                &[&["b", "c"]],
            )
            .unwrap()
            .build();
        let b = f.universe.lookup("B").unwrap();
        let c = f.universe.lookup("C").unwrap();
        let fds = vec![fd(&[b], &[c])];
        let outcome = chase_fds(&db, &fds, &mut f.symbols);
        assert!(outcome.consistent);
        let w = outcome.weak_instance("W", &db.all_attributes()).unwrap();
        assert_eq!(w.len(), 3);
        assert!(db.has_weak_instance(&w));
        assert!(w.satisfies_all_fds(&fds));
        // All three rows agree on B, so the chase propagated the constant c
        // into the rows coming from R1.
        let c_domain = w.active_domain(c).unwrap();
        assert_eq!(c_domain.len(), 1);
        assert!(f.symbols.is_constant(c_domain[0]));
    }

    #[test]
    fn inconsistent_database_is_detected() {
        let mut f = fixture();
        // Two R1 tuples with the same A but different B, plus FD A→B.
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "B"],
                &[&["a", "b1"], &["a", "b2"]],
            )
            .unwrap()
            .build();
        let a = f.universe.lookup("A").unwrap();
        let b = f.universe.lookup("B").unwrap();
        let outcome = chase_fds(&db, &[fd(&[a], &[b])], &mut f.symbols);
        assert!(!outcome.consistent);
        assert!(outcome.rows.is_none());
        assert!(outcome.weak_instance("W", &db.all_attributes()).is_none());
    }

    #[test]
    fn cross_relation_inconsistency_via_nulls() {
        let mut f = fixture();
        // R1[AB]: (a,b1); R2[AC]: (a,c1), (a2,c2); FDs A→B and C→B force
        // nothing inconsistent... but A→C plus the two relations below does.
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "C"],
                &[&["a", "c1"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R2",
                &["A", "C"],
                &[&["a", "c2"]],
            )
            .unwrap()
            .build();
        let a = f.universe.lookup("A").unwrap();
        let c = f.universe.lookup("C").unwrap();
        let outcome = chase_fds(&db, &[fd(&[a], &[c])], &mut f.symbols);
        assert!(!outcome.consistent);
    }

    #[test]
    fn chase_propagates_transitively_through_nulls() {
        let mut f = fixture();
        // R1[AB]: (a,b); R2[BC]: (b,c); R3[AC]: (a,c2).
        // FDs A→B, B→C make the null C of row 1 equal to c, and then A→C
        // forces c = c2: inconsistent.
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "B"],
                &[&["a", "b"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R2",
                &["B", "C"],
                &[&["b", "c"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R3",
                &["A", "C"],
                &[&["a", "c2"]],
            )
            .unwrap()
            .build();
        let a = f.universe.lookup("A").unwrap();
        let b = f.universe.lookup("B").unwrap();
        let c = f.universe.lookup("C").unwrap();
        let fds = vec![fd(&[a], &[b]), fd(&[b], &[c]), fd(&[a], &[c])];
        let outcome = chase_fds(&db, &fds, &mut f.symbols);
        assert!(!outcome.consistent);
        // Without the contradicting R3 tuple it is consistent.
        let db2 = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "B"],
                &[&["a", "b"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R2",
                &["B", "C"],
                &[&["b", "c"]],
            )
            .unwrap()
            .build();
        let outcome2 = chase_fds(&db2, &fds, &mut f.symbols);
        assert!(outcome2.consistent);
        let w = outcome2.weak_instance("W", &db2.all_attributes()).unwrap();
        assert!(w.satisfies_all_fds(&fds));
    }

    #[test]
    fn empty_fd_set_is_always_consistent() {
        let mut f = fixture();
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R",
                &["A", "B"],
                &[&["a", "b1"], &["a", "b2"]],
            )
            .unwrap()
            .build();
        let outcome = chase_fds(&db, &[], &mut f.symbols);
        assert!(outcome.consistent);
        assert_eq!(outcome.steps, 0);
    }

    #[test]
    fn chase_over_extra_attributes() {
        let mut f = fixture();
        let db = DatabaseBuilder::new()
            .relation(&mut f.universe, &mut f.symbols, "R", &["A"], &[&["a"]])
            .unwrap()
            .build();
        let b = f.universe.attr("B");
        let a = f.universe.lookup("A").unwrap();
        let mut attrs = db.all_attributes();
        attrs.insert(b);
        let outcome = chase_fds_over(&db, &attrs, &[fd(&[a], &[b])], &mut f.symbols);
        assert!(outcome.consistent);
        let w = outcome.weak_instance("W", &attrs).unwrap();
        assert_eq!(w.scheme().arity(), 2);
    }
}
