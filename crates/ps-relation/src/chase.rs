//! The chase with functional dependencies (Honeyman's weak-satisfaction
//! test).
//!
//! Given a database `d` and a set of FDs `Σ` over the union `U` of its
//! attributes, `d` is *consistent with `Σ` under the weak instance
//! assumption* iff there is a weak instance for `d` satisfying `Σ`
//! (Section 2.1).  The test builds the padded tableau of `d`
//! ([`crate::Tableau`]) and repeatedly applies the FDs: whenever two rows
//! agree on `X`, their `Y`-entries are equated.  Equating two *distinct
//! constants* is a contradiction; otherwise the chase terminates with a
//! representative weak instance.
//!
//! Two engines implement the fixpoint:
//!
//! * [`chase_tableau`] — the **indexed, worklist-driven engine**: one hash
//!   index per FD left-hand side maps lhs class keys to a leader row,
//!   symbol classes are merged through a [`ps_partition::UnionFind`], and a
//!   dirty-row worklist revisits only rows whose symbols changed class.
//!   Every row is examined `O(1 + changes)` times per FD instead of once
//!   per global round.
//! * [`chase_tableau_naive`] — the full-rescan reference: repeat passes
//!   over every (FD, row) pair until a pass changes nothing.
//!
//! Both report their work in [`ChaseOutcome::row_visits`], which the
//! `ps-bench` operation-counter test uses to prove the indexed engine does
//! strictly less work.  This is the polynomial-time workhorse behind
//! Theorems 6, 7 and 12 of the paper (experiment E5).

use std::collections::{HashMap, VecDeque};

use ps_base::{AttrSet, FreshSymbols, Symbol, SymbolTable};
use ps_partition::UnionFind;

use crate::{Database, Fd, Relation, RelationScheme, Tableau};

/// The outcome of chasing a tableau with FDs.
#[derive(Debug, Clone)]
pub struct ChaseOutcome {
    /// Whether the chase finished without equating two distinct constants.
    pub consistent: bool,
    /// Number of equate operations performed.
    pub steps: usize,
    /// Number of passes over the FD set (always `1` for the worklist
    /// engine, which has no global rounds).
    pub rounds: usize,
    /// Number of (row, FD) examinations performed — the work measure the
    /// operation-counter tests compare across engines.
    pub row_visits: usize,
    /// If consistent, the chased tableau rows with every symbol replaced by
    /// its representative.
    pub rows: Option<Vec<Vec<Symbol>>>,
}

impl ChaseOutcome {
    fn inconsistent(steps: usize, rounds: usize, row_visits: usize) -> Self {
        ChaseOutcome {
            consistent: false,
            steps,
            rounds,
            row_visits,
            rows: None,
        }
    }

    /// Converts the chased rows into a representative weak-instance relation
    /// over `attrs` named `name`.  Returns `None` if the chase found an
    /// inconsistency.
    pub fn weak_instance(&self, name: &str, attrs: &AttrSet) -> Option<Relation> {
        let rows = self.rows.as_ref()?;
        let scheme = RelationScheme::new(name, attrs.clone());
        let mut relation = Relation::new(scheme);
        for row in rows {
            relation
                .insert_values(row)
                .expect("chased rows match the attribute set");
        }
        Some(relation)
    }
}

/// Union–find over symbols in which constants can never be merged with each
/// other (HashMap-based; used by the naive reference engine).
struct SymbolClasses<'a> {
    parent: HashMap<Symbol, Symbol>,
    symbols: &'a SymbolTable,
}

impl<'a> SymbolClasses<'a> {
    fn new(symbols: &'a SymbolTable) -> Self {
        SymbolClasses {
            parent: HashMap::new(),
            symbols,
        }
    }

    fn find(&mut self, s: Symbol) -> Symbol {
        let p = *self.parent.get(&s).unwrap_or(&s);
        if p == s {
            return s;
        }
        let root = self.find(p);
        self.parent.insert(s, root);
        root
    }

    /// Merges the classes of `a` and `b`.  Returns `Ok(true)` if a merge
    /// happened, `Ok(false)` if they were already equal, and `Err(())` if
    /// both classes are rooted at distinct constants.
    fn union(&mut self, a: Symbol, b: Symbol) -> Result<bool, ()> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return Ok(false);
        }
        match (self.symbols.is_constant(ra), self.symbols.is_constant(rb)) {
            (true, true) => Err(()),
            (true, false) => {
                self.parent.insert(rb, ra);
                Ok(true)
            }
            _ => {
                // rb is a constant (keep it as root) or both are nulls.
                self.parent.insert(ra, rb);
                Ok(true)
            }
        }
    }
}

/// Pre-computes, for each FD, the column indices of its lhs/rhs attributes
/// that occur in the tableau, dropping FDs whose lhs mentions a column the
/// tableau lacks entirely (no two rows can agree on a column that does not
/// exist, so such FDs can never fire).
fn active_fd_columns(tableau: &Tableau, fds: &[Fd]) -> Vec<(Vec<usize>, Vec<usize>)> {
    fds.iter()
        .filter_map(|fd| {
            let lhs: Vec<usize> = fd.lhs.iter().filter_map(|a| tableau.position(a)).collect();
            if lhs.len() != fd.lhs.len() {
                return None;
            }
            let rhs: Vec<usize> = fd.rhs.iter().filter_map(|a| tableau.position(a)).collect();
            Some((lhs, rhs))
        })
        .collect()
}

/// Chases `tableau` with `fds` by full rescans: every pass re-examines
/// every (FD, row) pair until a pass changes nothing.  Kept as the
/// reference implementation the indexed engine is pinned against.
/// `symbols` is used only to distinguish constants from nulls.
pub fn chase_tableau_naive(tableau: &Tableau, fds: &[Fd], symbols: &SymbolTable) -> ChaseOutcome {
    let mut classes = SymbolClasses::new(symbols);
    let mut steps = 0usize;
    let mut rounds = 0usize;
    let mut row_visits = 0usize;

    let fd_columns = active_fd_columns(tableau, fds);

    loop {
        rounds += 1;
        let mut changed = false;
        for (lhs_cols, rhs_cols) in &fd_columns {
            // Group rows by the representative vector of their lhs columns.
            let mut groups: HashMap<Vec<Symbol>, usize> = HashMap::new();
            for (row_idx, row) in tableau.rows().iter().enumerate() {
                row_visits += 1;
                let key: Vec<Symbol> = lhs_cols.iter().map(|&c| classes.find(row[c])).collect();
                match groups.get(&key) {
                    None => {
                        groups.insert(key, row_idx);
                    }
                    Some(&leader) => {
                        // Equate the rhs entries of `row_idx` with the leader's.
                        for &c in rhs_cols {
                            let a = tableau.rows()[leader][c];
                            let b = row[c];
                            match classes.union(a, b) {
                                Ok(true) => {
                                    steps += 1;
                                    changed = true;
                                }
                                Ok(false) => {}
                                Err(()) => {
                                    return ChaseOutcome::inconsistent(steps, rounds, row_visits)
                                }
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let rows = tableau
        .rows()
        .iter()
        .map(|row| row.iter().map(|&s| classes.find(s)).collect())
        .collect();
    ChaseOutcome {
        consistent: true,
        steps,
        rounds,
        row_visits,
        rows: Some(rows),
    }
}

/// Reusable working storage for the indexed chase engine.
///
/// One [`chase_tableau_with`] run allocates a local symbol-interning table,
/// per-class row lists, one lhs-key hash index per FD, the dirty-row queue
/// and a key scratch buffer.  On macro workloads (10⁵–10⁶ tuples chased per
/// batch, or one chase per query in a long-lived session) that allocation
/// churn is a measurable share of the chase's wall-clock, so callers that
/// chase repeatedly hold one `ChaseScratch` and pass it to the `*_with`
/// entry points; each run clears — but keeps the capacity of — every
/// buffer.  The buffer-reuse path is pinned to the fresh-allocation path by
/// the `columnar_agreement` proptests and measured in the `BENCH_*.json`
/// trajectory (`chase_scratch_reuse` workload).
#[derive(Debug, Default)]
pub struct ChaseScratch {
    /// Dense local interning of the tableau's distinct symbols.
    local: HashMap<Symbol, u32>,
    /// `rep[r]` for a root `r`: the minimum symbol of the class.
    rep: Vec<Symbol>,
    /// `rows_of[r]` for a root `r`: the rows containing any class member.
    /// Pooled: entries beyond the current run's symbol count are kept empty.
    rows_of: Vec<Vec<u32>>,
    /// Per-row dense symbol ids (pooled like `rows_of`).
    cells: Vec<Vec<u32>>,
    /// One lhs-key index per FD, mapping the class roots of a row's lhs
    /// columns to the leader row first seen with that key.
    indexes: Vec<HashMap<Vec<u32>, u32>>,
    /// Dirty-row worklist and its membership mask.
    queue: VecDeque<u32>,
    queued: Vec<bool>,
    /// Scratch for the current row's lhs key (cloned only on index misses).
    key_buf: Vec<u32>,
    /// Rows dirtied by the most recent class merge.
    moved: Vec<u32>,
}

impl ChaseScratch {
    /// Creates an empty scratch (equivalent to `ChaseScratch::default()`).
    pub fn new() -> Self {
        ChaseScratch::default()
    }

    /// Clears every buffer for a fresh run, keeping capacities.
    fn reset(&mut self, num_rows: usize, num_fds: usize) {
        self.local.clear();
        self.rep.clear();
        for list in &mut self.rows_of {
            list.clear();
        }
        for row in &mut self.cells {
            row.clear();
        }
        if self.cells.len() > num_rows {
            self.cells.truncate(num_rows);
        }
        for index in &mut self.indexes {
            index.clear();
        }
        self.indexes.resize_with(num_fds, HashMap::new);
        self.queue.clear();
        self.queued.clear();
        self.queued.resize(num_rows, true);
        self.key_buf.clear();
        self.moved.clear();
    }
}

/// Result of merging two symbol classes.
enum Merge {
    /// Already the same class.
    Same,
    /// Classes merged; `ChaseScratch::moved` lists the rows whose key roots
    /// changed.
    Merged,
    /// Both classes were rooted at distinct constants.
    Clash,
}

/// Merges the classes of dense ids `a` and `b` in `uf`, maintaining the
/// minimum-symbol representative in `rep` (constants sort below fresh
/// nulls, so a class with a constant is always represented by it — and
/// since merging two constants is a contradiction, each class holds at most
/// one).  On a merge, the losing class's rows are drained into `moved` (for
/// re-queueing) and folded into the winner's list.
fn merge_classes(
    uf: &mut UnionFind,
    rep: &mut [Symbol],
    rows_of: &mut [Vec<u32>],
    moved: &mut Vec<u32>,
    a: u32,
    b: u32,
    symbols: &SymbolTable,
) -> Merge {
    let ra = uf.find(a as usize);
    let rb = uf.find(b as usize);
    if ra == rb {
        return Merge::Same;
    }
    if symbols.is_constant(rep[ra]) && symbols.is_constant(rep[rb]) {
        // Distinct roots with constant representatives ⇒ distinct
        // constants (equal constants intern to the same symbol).
        return Merge::Clash;
    }
    uf.union(ra, rb);
    let winner = uf.find(ra);
    let loser = if winner == ra { rb } else { ra };
    rep[winner] = rep[ra].min(rep[rb]);
    // Rows touching the losing class now hash to new keys: hand them to
    // the caller for re-queueing, and fold them into the winner's list.
    moved.clear();
    moved.extend_from_slice(&rows_of[loser]);
    rows_of[loser].clear();
    let (winner_rows, loser_rows) = if winner < loser {
        let (head, tail) = rows_of.split_at_mut(loser);
        (&mut head[winner], &tail[0])
    } else {
        let (head, tail) = rows_of.split_at_mut(winner);
        (&mut tail[0], &head[loser])
    };
    debug_assert!(loser_rows.is_empty());
    winner_rows.extend_from_slice(moved);
    Merge::Merged
}

/// Chases `tableau` with `fds` using the indexed, worklist-driven engine
/// (see the module docs), allocating fresh working storage.  Callers that
/// chase repeatedly should hold a [`ChaseScratch`] and use
/// [`chase_tableau_with`] instead.
pub fn chase_tableau(tableau: &Tableau, fds: &[Fd], symbols: &SymbolTable) -> ChaseOutcome {
    chase_tableau_with(tableau, fds, symbols, &mut ChaseScratch::default())
}

/// [`chase_tableau`] with caller-provided reusable buffers: the lhs-key
/// indexes, dirty-row queue, interning tables and key scratch live in
/// `scratch` and are cleared — not reallocated — between runs.
pub fn chase_tableau_with(
    tableau: &Tableau,
    fds: &[Fd],
    symbols: &SymbolTable,
    scratch: &mut ChaseScratch,
) -> ChaseOutcome {
    let rows = tableau.rows();
    let num_rows = rows.len();
    let fd_columns = active_fd_columns(tableau, fds);
    scratch.reset(num_rows, fd_columns.len());

    // Dense local interning of every distinct symbol in the tableau.
    for (row_idx, row) in rows.iter().enumerate() {
        let cells_row = if row_idx < scratch.cells.len() {
            &mut scratch.cells[row_idx]
        } else {
            scratch.cells.push(Vec::with_capacity(row.len()));
            scratch.cells.last_mut().expect("just pushed")
        };
        for &s in row {
            let id = match scratch.local.entry(s) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let id = scratch.rep.len() as u32;
                    scratch.rep.push(s);
                    if scratch.rows_of.len() <= id as usize {
                        scratch.rows_of.push(Vec::new());
                    }
                    e.insert(id);
                    id
                }
            };
            let list = &mut scratch.rows_of[id as usize];
            if list.last() != Some(&(row_idx as u32)) {
                list.push(row_idx as u32);
            }
            cells_row.push(id);
        }
    }

    let mut uf = UnionFind::new(scratch.rep.len());
    scratch.queue.extend(0..num_rows as u32);

    let mut steps = 0usize;
    let mut row_visits = 0usize;

    while let Some(row) = scratch.queue.pop_front() {
        scratch.queued[row as usize] = false;
        for (fd_idx, (lhs_cols, rhs_cols)) in fd_columns.iter().enumerate() {
            row_visits += 1;
            scratch.key_buf.clear();
            for &c in lhs_cols {
                scratch
                    .key_buf
                    .push(uf.find(scratch.cells[row as usize][c] as usize) as u32);
            }
            // Look up by slice; the key is cloned into the map only on the
            // first sighting, so the per-(row, FD) visit allocates nothing
            // once the index is warm.
            let leader = match scratch.indexes[fd_idx]
                .get(scratch.key_buf.as_slice())
                .copied()
            {
                None => {
                    scratch.indexes[fd_idx].insert(scratch.key_buf.clone(), row);
                    continue;
                }
                Some(leader) => leader,
            };
            if leader == row {
                continue;
            }
            for &c in rhs_cols {
                let a = scratch.cells[leader as usize][c];
                let b = scratch.cells[row as usize][c];
                match merge_classes(
                    &mut uf,
                    &mut scratch.rep,
                    &mut scratch.rows_of,
                    &mut scratch.moved,
                    a,
                    b,
                    symbols,
                ) {
                    Merge::Same => {}
                    Merge::Clash => {
                        return ChaseOutcome::inconsistent(steps, 1, row_visits);
                    }
                    Merge::Merged => {
                        steps += 1;
                        for &r in &scratch.moved {
                            if !scratch.queued[r as usize] {
                                scratch.queued[r as usize] = true;
                                scratch.queue.push_back(r);
                            }
                        }
                    }
                }
            }
        }
    }

    let chased = scratch
        .cells
        .iter()
        .take(num_rows)
        .map(|row| {
            row.iter()
                .map(|&id| scratch.rep[uf.find(id as usize)])
                .collect()
        })
        .collect();
    ChaseOutcome {
        consistent: true,
        steps,
        rounds: 1,
        row_visits,
        rows: Some(chased),
    }
}

/// Chases the padded tableau of `db` with `fds` over the union of the
/// database's attributes (Honeyman's test), using the indexed engine.
pub fn chase_fds(db: &Database, fds: &[Fd], symbols: &mut SymbolTable) -> ChaseOutcome {
    chase_fds_with(db, fds, symbols, &mut ChaseScratch::default())
}

/// [`chase_fds`] with caller-provided reusable buffers (see
/// [`ChaseScratch`]).
pub fn chase_fds_with(
    db: &Database,
    fds: &[Fd],
    symbols: &mut SymbolTable,
    scratch: &mut ChaseScratch,
) -> ChaseOutcome {
    let tableau = Tableau::from_database(db, symbols);
    chase_tableau_with(&tableau, fds, symbols, scratch)
}

/// [`chase_fds`] on the full-rescan reference engine.
pub fn chase_fds_naive(db: &Database, fds: &[Fd], symbols: &mut SymbolTable) -> ChaseOutcome {
    let tableau = Tableau::from_database(db, symbols);
    chase_tableau_naive(&tableau, fds, symbols)
}

/// Chases the padded tableau of `db` over an explicit attribute universe
/// (which may strictly contain the database's own attributes, as happens in
/// the Section 6.2 pipeline where constraints introduce new attributes).
pub fn chase_fds_over(
    db: &Database,
    attrs: &AttrSet,
    fds: &[Fd],
    symbols: &mut SymbolTable,
) -> ChaseOutcome {
    chase_fds_over_with(db, attrs, fds, symbols, &mut ChaseScratch::default())
}

/// [`chase_fds_over`] with caller-provided reusable buffers (see
/// [`ChaseScratch`]).
pub fn chase_fds_over_with(
    db: &Database,
    attrs: &AttrSet,
    fds: &[Fd],
    symbols: &mut SymbolTable,
    scratch: &mut ChaseScratch,
) -> ChaseOutcome {
    let tableau = Tableau::from_database_over(db, attrs, symbols);
    chase_tableau_with(&tableau, fds, symbols, scratch)
}

/// [`chase_fds_over_with`] against a *frozen* symbol table: padding nulls
/// are minted from the caller's detached [`FreshSymbols`] source instead of
/// mutating the table, so many threads can chase independent databases
/// against one shared `&SymbolTable`.
///
/// The chase itself only consults the table through
/// [`SymbolTable::is_constant`], a pure tag-bit test, so verdict, step
/// count and `row_visits` are identical to [`chase_fds_over_with`] — only
/// the nulls' numeric identities may differ, which
/// [`canonical_chase_rows`] erases.
pub fn chase_fds_over_frozen(
    db: &Database,
    attrs: &AttrSet,
    fds: &[Fd],
    symbols: &SymbolTable,
    fresh: &mut FreshSymbols,
    scratch: &mut ChaseScratch,
) -> ChaseOutcome {
    let tableau = Tableau::from_database_frozen(db, attrs, fresh);
    chase_tableau_with(&tableau, fds, symbols, scratch)
}

/// Renames fresh nulls to their first-occurrence index so chased rows can
/// be compared across engines and runs (each engine picks its own null
/// representatives; constants render by name).
pub fn canonical_chase_rows(rows: &[Vec<Symbol>], symbols: &SymbolTable) -> Vec<Vec<String>> {
    let mut naming: HashMap<Symbol, String> = HashMap::new();
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|&s| {
                    if symbols.is_constant(s) {
                        symbols.render(s)
                    } else {
                        let next = format!("null{}", naming.len());
                        naming.entry(s).or_insert(next).clone()
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::fd::fd;
    use ps_base::Universe;

    struct Fixture {
        universe: Universe,
        symbols: SymbolTable,
    }

    fn fixture() -> Fixture {
        Fixture {
            universe: Universe::new(),
            symbols: SymbolTable::new(),
        }
    }

    /// Both engines must agree: same verdict, same chased rows up to null
    /// renaming (the FD chase is confluent).  No relation between their
    /// `row_visits` is asserted here — the worklist engine wins on
    /// propagation-heavy workloads but can lose on tiny ones, where
    /// re-queues outnumber the naive engine's few global rounds.
    fn assert_engines_agree(db: &Database, fds: &[Fd], symbols: &mut SymbolTable) -> ChaseOutcome {
        let tableau = Tableau::from_database(db, symbols);
        let indexed = chase_tableau(&tableau, fds, symbols);
        let naive = chase_tableau_naive(&tableau, fds, symbols);
        assert_eq!(indexed.consistent, naive.consistent);
        match (&indexed.rows, &naive.rows) {
            (Some(a), Some(b)) => {
                assert_eq!(
                    canonical_chase_rows(a, symbols),
                    canonical_chase_rows(b, symbols)
                );
            }
            (None, None) => {}
            _ => unreachable!("verdicts agree"),
        }
        indexed
    }

    #[test]
    fn consistent_database_produces_a_weak_instance() {
        let mut f = fixture();
        // R1[AB], R2[BC] with B→C; consistent.
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "B"],
                &[&["a1", "b"], &["a2", "b"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R2",
                &["B", "C"],
                &[&["b", "c"]],
            )
            .unwrap()
            .build();
        let b = f.universe.lookup("B").unwrap();
        let c = f.universe.lookup("C").unwrap();
        let fds = vec![fd(&[b], &[c])];
        let outcome = chase_fds(&db, &fds, &mut f.symbols);
        assert!(outcome.consistent);
        let w = outcome.weak_instance("W", &db.all_attributes()).unwrap();
        assert_eq!(w.len(), 3);
        assert!(db.has_weak_instance(&w));
        assert!(w.satisfies_all_fds(&fds));
        // All three rows agree on B, so the chase propagated the constant c
        // into the rows coming from R1.
        let c_domain = w.active_domain(c).unwrap();
        assert_eq!(c_domain.len(), 1);
        assert!(f.symbols.is_constant(c_domain[0]));
        assert_engines_agree(&db, &fds, &mut f.symbols);
    }

    #[test]
    fn inconsistent_database_is_detected() {
        let mut f = fixture();
        // Two R1 tuples with the same A but different B, plus FD A→B.
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "B"],
                &[&["a", "b1"], &["a", "b2"]],
            )
            .unwrap()
            .build();
        let a = f.universe.lookup("A").unwrap();
        let b = f.universe.lookup("B").unwrap();
        let outcome = chase_fds(&db, &[fd(&[a], &[b])], &mut f.symbols);
        assert!(!outcome.consistent);
        assert!(outcome.rows.is_none());
        assert!(outcome.weak_instance("W", &db.all_attributes()).is_none());
        assert_engines_agree(&db, &[fd(&[a], &[b])], &mut f.symbols);
    }

    #[test]
    fn cross_relation_inconsistency_via_nulls() {
        let mut f = fixture();
        // R1[AC]: (a,c1); R2[AC]: (a,c2); FD A→C equates the constants c1, c2.
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "C"],
                &[&["a", "c1"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R2",
                &["A", "C"],
                &[&["a", "c2"]],
            )
            .unwrap()
            .build();
        let a = f.universe.lookup("A").unwrap();
        let c = f.universe.lookup("C").unwrap();
        let outcome = chase_fds(&db, &[fd(&[a], &[c])], &mut f.symbols);
        assert!(!outcome.consistent);
    }

    #[test]
    fn chase_propagates_transitively_through_nulls() {
        let mut f = fixture();
        // R1[AB]: (a,b); R2[BC]: (b,c); R3[AC]: (a,c2).
        // FDs A→B, B→C make the null C of row 1 equal to c, and then A→C
        // forces c = c2: inconsistent.
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "B"],
                &[&["a", "b"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R2",
                &["B", "C"],
                &[&["b", "c"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R3",
                &["A", "C"],
                &[&["a", "c2"]],
            )
            .unwrap()
            .build();
        let a = f.universe.lookup("A").unwrap();
        let b = f.universe.lookup("B").unwrap();
        let c = f.universe.lookup("C").unwrap();
        let fds = vec![fd(&[a], &[b]), fd(&[b], &[c]), fd(&[a], &[c])];
        let outcome = chase_fds(&db, &fds, &mut f.symbols);
        assert!(!outcome.consistent);
        // Without the contradicting R3 tuple it is consistent.
        let db2 = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "B"],
                &[&["a", "b"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R2",
                &["B", "C"],
                &[&["b", "c"]],
            )
            .unwrap()
            .build();
        let outcome2 = chase_fds(&db2, &fds, &mut f.symbols);
        assert!(outcome2.consistent);
        let w = outcome2.weak_instance("W", &db2.all_attributes()).unwrap();
        assert!(w.satisfies_all_fds(&fds));
        assert_engines_agree(&db2, &fds, &mut f.symbols);
    }

    #[test]
    fn empty_fd_set_is_always_consistent() {
        let mut f = fixture();
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R",
                &["A", "B"],
                &[&["a", "b1"], &["a", "b2"]],
            )
            .unwrap()
            .build();
        let outcome = chase_fds(&db, &[], &mut f.symbols);
        assert!(outcome.consistent);
        assert_eq!(outcome.steps, 0);
        assert_eq!(outcome.row_visits, 0);
    }

    #[test]
    fn chase_over_extra_attributes() {
        let mut f = fixture();
        let db = DatabaseBuilder::new()
            .relation(&mut f.universe, &mut f.symbols, "R", &["A"], &[&["a"]])
            .unwrap()
            .build();
        let b = f.universe.attr("B");
        let a = f.universe.lookup("A").unwrap();
        let mut attrs = db.all_attributes();
        attrs.insert(b);
        let outcome = chase_fds_over(&db, &attrs, &[fd(&[a], &[b])], &mut f.symbols);
        assert!(outcome.consistent);
        let w = outcome.weak_instance("W", &attrs).unwrap();
        assert_eq!(w.scheme().arity(), 2);
    }

    #[test]
    fn indexed_engine_revisits_fewer_rows_on_propagation_chains() {
        let mut f = fixture();
        // A propagation chain A0→A1→…→A4 across single-attribute-overlap
        // relations, with the FDs listed against the propagation direction
        // so the full-rescan engine needs several rounds.
        let mut builder = DatabaseBuilder::new();
        for i in 0..4 {
            let name = format!("R{i}");
            let attrs = [format!("A{i}"), format!("A{}", i + 1)];
            let rows = [
                [format!("v{i}_0"), format!("v{}_0", i + 1)],
                [format!("v{i}_1"), format!("v{}_0", i + 1)],
            ];
            let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
            let row_refs: Vec<Vec<&str>> = rows
                .iter()
                .map(|r| r.iter().map(String::as_str).collect())
                .collect();
            let row_slices: Vec<&[&str]> = row_refs.iter().map(Vec::as_slice).collect();
            builder = builder
                .relation(
                    &mut f.universe,
                    &mut f.symbols,
                    &name,
                    &attr_refs,
                    &row_slices,
                )
                .unwrap();
        }
        let db = builder.build();
        let mut fds: Vec<Fd> = (0..4)
            .map(|i| {
                let lhs = f.universe.lookup(&format!("A{i}")).unwrap();
                let rhs = f.universe.lookup(&format!("A{}", i + 1)).unwrap();
                fd(&[lhs], &[rhs])
            })
            .collect();
        fds.reverse();
        let indexed = assert_engines_agree(&db, &fds, &mut f.symbols);
        let naive = chase_fds_naive(&db, &fds, &mut f.symbols);
        assert!(indexed.consistent && naive.consistent);
        assert!(
            indexed.row_visits < naive.row_visits,
            "worklist engine must do strictly less work ({} vs {})",
            indexed.row_visits,
            naive.row_visits
        );
    }
}
