//! FD implication: attribute closures, minimal covers, keys.
//!
//! Section 5.3 of the paper identifies FD implication with the uniform word
//! problem for idempotent commutative semigroups and notes that the
//! inference system of Armstrong and the efficient algorithms of
//! Beeri–Bernstein apply.  This module implements both:
//!
//! * [`attribute_closure_naive`] — the textbook quadratic fixpoint;
//! * [`attribute_closure`] — the Beeri–Bernstein linear-time closure with
//!   per-FD counters;
//!
//! and the derived notions: [`implies`], [`equivalent`], [`minimal_cover`],
//! [`is_superkey`] and [`candidate_keys`].  Experiment E2 benchmarks the two
//! closure variants against the lattice-theoretic route through `ps-lattice`.

use std::collections::HashMap;

use ps_base::{AttrSet, Attribute};

use crate::Fd;

/// Armstrong closure of `start` under `fds`, computed by the naïve
/// "apply every FD until nothing changes" loop (worst-case quadratic in the
/// total size of `fds`).
pub fn attribute_closure_naive(fds: &[Fd], start: &AttrSet) -> AttrSet {
    let mut closure = start.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs.is_subset(&closure) && !fd.rhs.is_subset(&closure) {
                closure = closure.union(&fd.rhs);
                changed = true;
            }
        }
    }
    closure
}

/// Armstrong closure of `start` under `fds`, computed by the Beeri–Bernstein
/// counting algorithm: linear in the total size of the FD set.
pub fn attribute_closure(fds: &[Fd], start: &AttrSet) -> AttrSet {
    // For every FD, count how many of its left-hand-side attributes are not
    // yet in the closure; when the count reaches zero the FD fires.
    let mut remaining: Vec<usize> = fds.iter().map(|fd| fd.lhs.len()).collect();
    // Index: attribute -> FDs whose lhs contains it.
    let mut uses: HashMap<Attribute, Vec<usize>> = HashMap::new();
    for (i, fd) in fds.iter().enumerate() {
        for a in fd.lhs.iter() {
            uses.entry(a).or_default().push(i);
        }
    }
    let mut closure = start.clone();
    let mut queue: Vec<Attribute> = start.iter().collect();
    while let Some(attr) = queue.pop() {
        let Some(fd_indices) = uses.get(&attr) else {
            continue;
        };
        for &i in fd_indices {
            remaining[i] -= 1;
            if remaining[i] == 0 {
                for b in fds[i].rhs.iter() {
                    if closure.insert(b) {
                        queue.push(b);
                    }
                }
            }
        }
    }
    closure
}

/// Whether `fds ⊨ goal` (implication of a functional dependency).
pub fn implies(fds: &[Fd], goal: &Fd) -> bool {
    goal.rhs.is_subset(&attribute_closure(fds, &goal.lhs))
}

/// Whether every FD of `other` follows from `fds`.
pub fn implies_all(fds: &[Fd], other: &[Fd]) -> bool {
    other.iter().all(|fd| implies(fds, fd))
}

/// Whether two FD sets are equivalent (each implies the other).
pub fn equivalent(left: &[Fd], right: &[Fd]) -> bool {
    implies_all(left, right) && implies_all(right, left)
}

/// Computes a minimal cover of `fds`: singleton right-hand sides, no
/// redundant FDs, no redundant left-hand-side attributes.
pub fn minimal_cover(fds: &[Fd]) -> Vec<Fd> {
    // 1. Split right-hand sides.
    let mut cover: Vec<Fd> = fds.iter().flat_map(Fd::split_rhs).collect();
    // Drop trivial FDs outright.
    cover.retain(|fd| !fd.is_trivial());
    // 2. Remove extraneous left-hand-side attributes.
    let mut i = 0;
    while i < cover.len() {
        let mut lhs = cover[i].lhs.clone();
        for attr in cover[i].lhs.iter() {
            if lhs.len() == 1 {
                break;
            }
            let mut candidate = lhs.clone();
            candidate.remove(attr);
            // Keep the shrunken lhs if the attribute is derivable from the rest.
            if cover[i]
                .rhs
                .is_subset(&attribute_closure(&cover, &candidate))
            {
                lhs = candidate;
            }
        }
        cover[i] = Fd::new(lhs, cover[i].rhs.clone());
        i += 1;
    }
    // 3. Remove redundant FDs.
    let mut i = 0;
    while i < cover.len() {
        let removed = cover.remove(i);
        if implies(&cover, &removed) {
            // Redundant: keep it removed, do not advance (indices shifted).
        } else {
            cover.insert(i, removed);
            i += 1;
        }
    }
    cover
}

/// Whether `candidate` is a superkey of a scheme with attributes `all` under
/// `fds`.
pub fn is_superkey(fds: &[Fd], all: &AttrSet, candidate: &AttrSet) -> bool {
    all.is_subset(&attribute_closure(fds, candidate))
}

/// Enumerates the candidate keys (minimal superkeys) of a scheme.
///
/// Uses the standard observation that every key must contain the attributes
/// that appear in no right-hand side, and explores supersets in increasing
/// size; exponential in the worst case, fine for the scheme sizes used in
/// the paper's constructions.
pub fn candidate_keys(fds: &[Fd], all: &AttrSet) -> Vec<AttrSet> {
    let in_some_rhs: AttrSet = fds
        .iter()
        .fold(AttrSet::new(), |acc, fd| acc.union(&fd.rhs));
    let mandatory: AttrSet = all.difference(&in_some_rhs);
    if is_superkey(fds, all, &mandatory) && !mandatory.is_empty() {
        return vec![mandatory];
    }
    let optional: Vec<Attribute> = all.difference(&mandatory).iter().collect();
    let mut keys: Vec<AttrSet> = Vec::new();
    // Breadth-first over subset sizes so that keys found are minimal.
    for size in 0..=optional.len() {
        for combo in combinations(&optional, size) {
            let candidate: AttrSet = mandatory.union(&combo.iter().copied().collect());
            if candidate.is_empty() {
                continue;
            }
            if keys.iter().any(|k| k.is_subset(&candidate)) {
                continue;
            }
            if is_superkey(fds, all, &candidate) {
                keys.push(candidate);
            }
        }
    }
    keys
}

fn combinations(items: &[Attribute], size: usize) -> Vec<Vec<Attribute>> {
    if size == 0 {
        return vec![Vec::new()];
    }
    if size > items.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, &first) in items.iter().enumerate() {
        for mut rest in combinations(&items[i + 1..], size - 1) {
            let mut combo = vec![first];
            combo.append(&mut rest);
            out.push(combo);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::fd;
    use ps_base::Universe;

    fn attrs(n: usize) -> (Universe, Vec<Attribute>) {
        let mut u = Universe::new();
        let names: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
        let a = u.attrs(names.iter().map(String::as_str));
        (u, a)
    }

    #[test]
    fn closures_agree_on_a_chain() {
        let (_, a) = attrs(5);
        let fds = vec![
            fd(&[a[0]], &[a[1]]),
            fd(&[a[1]], &[a[2]]),
            fd(&[a[2], a[3]], &[a[4]]),
        ];
        let start = AttrSet::singleton(a[0]);
        let naive = attribute_closure_naive(&fds, &start);
        let fast = attribute_closure(&fds, &start);
        assert_eq!(naive, fast);
        assert_eq!(naive, vec![a[0], a[1], a[2]].into());
        let start2: AttrSet = vec![a[0], a[3]].into();
        assert_eq!(
            attribute_closure(&fds, &start2),
            vec![a[0], a[1], a[2], a[3], a[4]].into()
        );
    }

    #[test]
    fn implication_and_equivalence() {
        let (_, a) = attrs(4);
        let fds = vec![fd(&[a[0]], &[a[1]]), fd(&[a[1]], &[a[2]])];
        assert!(implies(&fds, &fd(&[a[0]], &[a[2]])));
        assert!(implies(&fds, &fd(&[a[0], a[3]], &[a[2]])));
        assert!(!implies(&fds, &fd(&[a[2]], &[a[0]])));
        let other = vec![fd(&[a[0]], &[a[1], a[2]]), fd(&[a[1]], &[a[2]])];
        assert!(equivalent(&fds, &other));
        assert!(!equivalent(&fds, &[fd(&[a[0]], &[a[3]])]));
    }

    #[test]
    fn minimal_cover_removes_redundancy() {
        let (_, a) = attrs(3);
        // A→B, B→C, A→C (redundant), AB→C (extraneous lhs + redundant).
        let fds = vec![
            fd(&[a[0]], &[a[1]]),
            fd(&[a[1]], &[a[2]]),
            fd(&[a[0]], &[a[2]]),
            fd(&[a[0], a[1]], &[a[2]]),
        ];
        let cover = minimal_cover(&fds);
        assert!(equivalent(&cover, &fds));
        assert_eq!(cover.len(), 2);
        assert!(cover.iter().all(|f| f.rhs.len() == 1));
        assert!(cover.iter().all(|f| f.lhs.len() == 1));
    }

    #[test]
    fn minimal_cover_of_trivial_fds_is_empty() {
        let (_, a) = attrs(2);
        let cover = minimal_cover(&[fd(&[a[0], a[1]], &[a[0]])]);
        assert!(cover.is_empty());
    }

    #[test]
    fn superkeys_and_candidate_keys() {
        let (_, a) = attrs(4);
        // A→B, B→C; D appears in no rhs so it is in every key.
        let fds = vec![fd(&[a[0]], &[a[1]]), fd(&[a[1]], &[a[2]])];
        let all: AttrSet = vec![a[0], a[1], a[2], a[3]].into();
        assert!(is_superkey(&fds, &all, &vec![a[0], a[3]].into()));
        assert!(!is_superkey(&fds, &all, &vec![a[0]].into()));
        let keys = candidate_keys(&fds, &all);
        assert_eq!(keys, vec![AttrSet::from(vec![a[0], a[3]])]);
    }

    #[test]
    fn candidate_keys_with_multiple_minimal_keys() {
        let (_, a) = attrs(2);
        // A→B and B→A: both A and B are keys.
        let fds = vec![fd(&[a[0]], &[a[1]]), fd(&[a[1]], &[a[0]])];
        let all: AttrSet = vec![a[0], a[1]].into();
        let keys = candidate_keys(&fds, &all);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&AttrSet::singleton(a[0])));
        assert!(keys.contains(&AttrSet::singleton(a[1])));
    }

    #[test]
    fn closure_with_no_fds_is_identity() {
        let (_, a) = attrs(3);
        let start: AttrSet = vec![a[1]].into();
        assert_eq!(attribute_closure(&[], &start), start);
        assert_eq!(attribute_closure_naive(&[], &start), start);
    }
}
