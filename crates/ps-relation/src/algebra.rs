//! Relational-algebra operations.
//!
//! The conclusion of the paper stresses that assigning partition semantics
//! to the relational model does not take away the familiar algebraic
//! operations on relations — "after all these operations are syntactic
//! manipulations of syntactic objects".  This module provides them:
//! selection, projection (already on [`Relation`]), natural join, Cartesian
//! product, union, difference, intersection and renaming.  All operations
//! run on the columnar kernel: rows are read through zero-copy
//! [`RowRef`] views, and the natural join is a hash join on the shared
//! attributes rather than a nested-loop scan.

use std::collections::HashMap;

use ps_base::Symbol;

use crate::{Relation, RelationError, RelationScheme, Result, RowRef};

/// Selection `σ_pred(r)`: keeps the rows satisfying `pred`.
pub fn select(r: &Relation, name: &str, pred: impl Fn(RowRef<'_>) -> bool) -> Relation {
    let mut out = Relation::new(RelationScheme::new(name, r.scheme().attrs().clone()));
    for row in r.iter() {
        if pred(row) {
            out.insert_values(&row.to_values()).expect("same scheme");
        }
    }
    out
}

/// Union `r ∪ s` of two relations over identical attribute sets.
pub fn union(r: &Relation, s: &Relation, name: &str) -> Result<Relation> {
    require_same_attrs(r, s)?;
    let mut out = Relation::new(RelationScheme::new(name, r.scheme().attrs().clone()));
    for row in r.iter().chain(s.iter()) {
        out.insert_values(&row.to_values())?;
    }
    Ok(out)
}

/// Difference `r − s` of two relations over identical attribute sets.
pub fn difference(r: &Relation, s: &Relation, name: &str) -> Result<Relation> {
    require_same_attrs(r, s)?;
    let mut out = Relation::new(RelationScheme::new(name, r.scheme().attrs().clone()));
    for row in r.iter() {
        let values = row.to_values();
        if !s.contains_values(&values) {
            out.insert_values(&values)?;
        }
    }
    Ok(out)
}

/// Intersection `r ∩ s` of two relations over identical attribute sets.
pub fn intersection(r: &Relation, s: &Relation, name: &str) -> Result<Relation> {
    require_same_attrs(r, s)?;
    let mut out = Relation::new(RelationScheme::new(name, r.scheme().attrs().clone()));
    for row in r.iter() {
        let values = row.to_values();
        if s.contains_values(&values) {
            out.insert_values(&values)?;
        }
    }
    Ok(out)
}

/// Natural join `r ⋈ s`: tuples agreeing on the common attributes are
/// combined; with disjoint schemes this degenerates to the Cartesian
/// product.
///
/// Implemented as a hash join: `s` is bucketed by its shared-attribute key
/// once, and each row of `r` probes its bucket — `O(|r| + |s| + output)`
/// instead of the nested-loop `O(|r| · |s|)`.
pub fn natural_join(r: &Relation, s: &Relation, name: &str) -> Result<Relation> {
    let shared = r.scheme().attrs().intersection(s.scheme().attrs());
    let out_attrs = r.scheme().attrs().union(s.scheme().attrs());
    let scheme = RelationScheme::new(name, out_attrs.clone());
    let mut out = Relation::new(scheme);

    // Bucket `s` rows by their shared-attribute key.
    let mut buckets: HashMap<Vec<Symbol>, Vec<usize>> = HashMap::new();
    for row in s.iter() {
        buckets
            .entry(row.project(&shared))
            .or_default()
            .push(row.index());
    }

    // Each output column pulls from a fixed position of `r` or of `s`.
    enum Source {
        Left(usize),
        Right(usize),
    }
    let sources: Vec<Source> = out_attrs
        .iter()
        .map(|a| {
            if let Some(pos) = r.scheme().position(a) {
                Source::Left(pos)
            } else {
                let pos = s.scheme().position(a).expect("attribute from union");
                Source::Right(pos)
            }
        })
        .collect();

    let mut values = vec![Symbol::from_index(0); out_attrs.len()];
    for row in r.iter() {
        let Some(matches) = buckets.get(&row.project(&shared)) else {
            continue;
        };
        for &s_idx in matches {
            for (slot, source) in values.iter_mut().zip(&sources) {
                *slot = match source {
                    Source::Left(pos) => row.value_at(*pos),
                    Source::Right(pos) => s.row(s_idx).value_at(*pos),
                };
            }
            out.insert_values(&values)?;
        }
    }
    Ok(out)
}

/// Cartesian product `r × s` of relations over disjoint attribute sets.
pub fn cartesian_product(r: &Relation, s: &Relation, name: &str) -> Result<Relation> {
    if !r.scheme().attrs().is_disjoint(s.scheme().attrs()) {
        return Err(RelationError::SchemeMismatch {
            left: r.scheme().name().to_owned(),
            right: s.scheme().name().to_owned(),
        });
    }
    natural_join(r, s, name)
}

/// Renames a relation (the scheme keeps the same attributes).
pub fn rename(r: &Relation, name: &str) -> Relation {
    let mut out = Relation::new(RelationScheme::new(name, r.scheme().attrs().clone()));
    for row in r.iter() {
        out.insert_values(&row.to_values()).expect("same scheme");
    }
    out
}

fn require_same_attrs(r: &Relation, s: &Relation) -> Result<()> {
    if r.scheme().attrs() != s.scheme().attrs() {
        return Err(RelationError::SchemeMismatch {
            left: r.scheme().name().to_owned(),
            right: s.scheme().name().to_owned(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use ps_base::{SymbolTable, Universe};

    struct Fixture {
        universe: Universe,
        symbols: SymbolTable,
    }

    fn relation(f: &mut Fixture, name: &str, attrs: &[&str], rows: &[&[&str]]) -> Relation {
        let db = DatabaseBuilder::new()
            .relation(&mut f.universe, &mut f.symbols, name, attrs, rows)
            .unwrap()
            .build();
        db.relations()[0].clone()
    }

    fn fixture() -> Fixture {
        Fixture {
            universe: Universe::new(),
            symbols: SymbolTable::new(),
        }
    }

    #[test]
    fn selection_filters_rows() {
        let mut f = fixture();
        let r = relation(&mut f, "R", &["A", "B"], &[&["a1", "b1"], &["a2", "b2"]]);
        let a1 = f.symbols.lookup("a1").unwrap();
        let sel = select(&r, "S", |t| t.value_at(0) == a1);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn union_difference_intersection() {
        let mut f = fixture();
        let r = relation(&mut f, "R", &["A", "B"], &[&["a1", "b1"], &["a2", "b2"]]);
        let s = relation(&mut f, "S", &["A", "B"], &[&["a2", "b2"], &["a3", "b3"]]);
        assert_eq!(union(&r, &s, "U").unwrap().len(), 3);
        assert_eq!(difference(&r, &s, "D").unwrap().len(), 1);
        assert_eq!(intersection(&r, &s, "I").unwrap().len(), 1);
        // Mismatched schemes are rejected.
        let t = relation(&mut f, "T", &["A", "C"], &[&["a1", "c1"]]);
        assert!(union(&r, &t, "U").is_err());
        assert!(difference(&r, &t, "D").is_err());
        assert!(intersection(&r, &t, "I").is_err());
    }

    #[test]
    fn natural_join_combines_on_shared_attributes() {
        let mut f = fixture();
        let r = relation(&mut f, "R", &["A", "B"], &[&["a1", "b1"], &["a2", "b2"]]);
        let s = relation(
            &mut f,
            "S",
            &["B", "C"],
            &[&["b1", "c1"], &["b1", "c2"], &["b3", "c3"]],
        );
        let j = natural_join(&r, &s, "J").unwrap();
        assert_eq!(j.scheme().arity(), 3);
        assert_eq!(j.len(), 2); // a1 joins with two S-tuples, a2 with none.
    }

    #[test]
    fn cartesian_product_requires_disjoint_schemes() {
        let mut f = fixture();
        let r = relation(&mut f, "R", &["A"], &[&["a1"], &["a2"]]);
        let s = relation(&mut f, "S", &["B"], &[&["b1"], &["b2"], &["b3"]]);
        let p = cartesian_product(&r, &s, "P").unwrap();
        assert_eq!(p.len(), 6);
        let overlapping = relation(&mut f, "T", &["A", "B"], &[&["a1", "b1"]]);
        assert!(cartesian_product(&r, &overlapping, "P").is_err());
    }

    #[test]
    fn rename_preserves_contents() {
        let mut f = fixture();
        let r = relation(&mut f, "R", &["A"], &[&["a1"]]);
        let renamed = rename(&r, "R2");
        assert_eq!(renamed.scheme().name(), "R2");
        assert_eq!(renamed.len(), 1);
        assert_eq!(renamed.scheme().attrs(), r.scheme().attrs());
    }

    #[test]
    fn join_on_disjoint_schemes_is_cartesian() {
        let mut f = fixture();
        let r = relation(&mut f, "R", &["A"], &[&["a1"], &["a2"]]);
        let s = relation(&mut f, "S", &["B"], &[&["b1"]]);
        assert_eq!(natural_join(&r, &s, "J").unwrap().len(), 2);
    }
}
