//! Databases: collections of relations over a database scheme.

use std::collections::HashSet;

use ps_base::{AttrSet, Attribute, Symbol, SymbolTable, Universe};

use crate::{DatabaseScheme, Relation, Result};

/// A database `d = {r₁, …, r_n}`: one relation per relation scheme.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: Vec<Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation.
    pub fn add(&mut self, relation: Relation) {
        self.relations.push(relation);
    }

    /// The relations, in insertion order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Mutable access to the relations.
    pub fn relations_mut(&mut self) -> &mut [Relation] {
        &mut self.relations
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// The database scheme `D` induced by the relations.
    pub fn scheme(&self) -> DatabaseScheme {
        DatabaseScheme::from_schemes(self.relations.iter().map(|r| r.scheme().clone()).collect())
    }

    /// The union of all attributes appearing in the database (the `U` over
    /// which weak instances are taken).
    pub fn all_attributes(&self) -> AttrSet {
        self.relations
            .iter()
            .fold(AttrSet::new(), |acc, r| acc.union(r.scheme().attrs()))
    }

    /// The set `d[A]`: all symbols appearing under columns headed by `attr`
    /// anywhere in the database.
    pub fn active_domain(&self, attr: Attribute) -> Vec<Symbol> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for r in &self.relations {
            if r.scheme().contains(attr) {
                for s in r.active_domain(attr).expect("attribute is in the scheme") {
                    if seen.insert(s) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }

    /// Finds a relation by its scheme name.
    pub fn relation_named(&self, name: &str) -> Option<&Relation> {
        self.relations.iter().find(|r| r.scheme().name() == name)
    }

    /// Whether `w` is a **weak instance** for this database: `w` is a
    /// relation over (at least) all of the database's attributes and the
    /// projection of `w` onto each relation scheme contains that relation
    /// (Section 2.1).
    pub fn has_weak_instance(&self, w: &Relation) -> bool {
        let all = self.all_attributes();
        if !all.is_subset(w.scheme().attrs()) {
            return false;
        }
        for r in &self.relations {
            let proj = match w.project("w_proj", r.scheme().attrs()) {
                Ok(p) => p,
                Err(_) => return false,
            };
            // `r`'s rows are already in the sorted attribute order of the
            // projected scheme, so the row values can be looked up directly.
            for row in r.iter() {
                if !proj.contains_values(&row.to_values()) {
                    return false;
                }
            }
        }
        true
    }

    /// Renders all relations as tables.
    pub fn render(&self, universe: &Universe, symbols: &SymbolTable) -> String {
        self.relations
            .iter()
            .map(|r| r.render(universe, symbols))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// A convenience builder for constructing databases in tests, examples and
/// benchmarks from string names.
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    relations: Vec<Relation>,
}

impl DatabaseBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a relation with the given name, attribute names and rows of
    /// symbol names.
    ///
    /// Malformed inputs are rejected with an `Err` rather than a panic:
    /// a relation name already used by this builder
    /// ([`crate::RelationError::DuplicateRelation`]), an empty or repeating
    /// attribute list ([`crate::RelationError::EmptyAttributeSet`] /
    /// [`crate::RelationError::DuplicateAttribute`]), and rows whose arity differs
    /// from the scheme's ([`crate::RelationError::ArityMismatch`]).
    pub fn relation(
        mut self,
        universe: &mut Universe,
        symbols: &mut SymbolTable,
        name: &str,
        attr_names: &[&str],
        rows: &[&[&str]],
    ) -> Result<Self> {
        use crate::RelationError;

        if self.relations.iter().any(|r| r.scheme().name() == name) {
            return Err(RelationError::DuplicateRelation { name: name.into() });
        }
        if attr_names.is_empty() {
            return Err(RelationError::EmptyAttributeSet("a relation scheme"));
        }
        if let Some(repeated) = attr_names
            .iter()
            .enumerate()
            .find_map(|(i, n)| attr_names[..i].contains(n).then_some(n))
        {
            return Err(RelationError::DuplicateAttribute {
                scheme: name.into(),
                name: (*repeated).into(),
            });
        }
        let attrs: AttrSet = universe.attrs(attr_names.iter().copied()).into();
        let scheme = crate::RelationScheme::new(name, attrs.clone());
        // Rows are given in the order of `attr_names`; re-order the values to
        // the scheme's sorted column order.
        let positions: Vec<usize> = attr_names
            .iter()
            .map(|n| {
                let attr = universe.lookup(n).expect("just interned");
                scheme.position(attr).expect("attribute belongs to scheme")
            })
            .collect();
        let mut relation = Relation::new(scheme);
        for row in rows {
            if row.len() != attr_names.len() {
                return Err(RelationError::ArityMismatch {
                    scheme: name.into(),
                    expected: attr_names.len(),
                    found: row.len(),
                });
            }
            let mut values = vec![Symbol::from_index(0); row.len()];
            for (value_name, &pos) in row.iter().zip(positions.iter()) {
                values[pos] = symbols.symbol(value_name);
            }
            relation.insert_values(&values)?;
        }
        self.relations.push(relation);
        Ok(self)
    }

    /// Finishes building the database.
    pub fn build(self) -> Database {
        let mut db = Database::new();
        for r in self.relations {
            db.add(r);
        }
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RelationScheme;

    fn figure1_database() -> (Universe, SymbolTable, Database) {
        let mut u = Universe::new();
        let mut s = SymbolTable::new();
        let db = DatabaseBuilder::new()
            .relation(
                &mut u,
                &mut s,
                "R",
                &["A", "B", "C"],
                &[
                    &["a", "b", "c"],
                    &["a2", "b1", "c"],
                    &["a2", "b1", "c1"],
                    &["a1", "b", "c1"],
                ],
            )
            .unwrap()
            .build();
        (u, s, db)
    }

    #[test]
    fn builder_rejects_malformed_inputs_without_panicking() {
        let mut u = Universe::new();
        let mut s = SymbolTable::new();
        // Row arity differing from the scheme is an error, not a panic.
        let err = DatabaseBuilder::new()
            .relation(&mut u, &mut s, "R", &["A", "B"], &[&["a"]])
            .unwrap_err();
        assert!(matches!(
            err,
            crate::RelationError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            }
        ));
        // Duplicate relation names within one builder are rejected.
        let err = DatabaseBuilder::new()
            .relation(&mut u, &mut s, "R", &["A"], &[&["a"]])
            .unwrap()
            .relation(&mut u, &mut s, "R", &["B"], &[&["b"]])
            .unwrap_err();
        assert!(matches!(
            err,
            crate::RelationError::DuplicateRelation { name } if name == "R"
        ));
        // Repeated attribute names make the scheme malformed.
        let err = DatabaseBuilder::new()
            .relation(&mut u, &mut s, "R", &["A", "A"], &[&["a", "a"]])
            .unwrap_err();
        assert!(matches!(
            err,
            crate::RelationError::DuplicateAttribute { name, .. } if name == "A"
        ));
        // An empty attribute list is a malformed scheme.
        let err = DatabaseBuilder::new()
            .relation(&mut u, &mut s, "R", &[], &[])
            .unwrap_err();
        assert!(matches!(err, crate::RelationError::EmptyAttributeSet(_)));
        // Relations with zero rows remain legal (empty populations are the
        // caller's concern and are reported by ps-core where they matter).
        let db = DatabaseBuilder::new()
            .relation(&mut u, &mut s, "Empty", &["A"], &[])
            .unwrap()
            .build();
        assert_eq!(db.total_tuples(), 0);
    }

    #[test]
    fn builder_builds_and_counts() {
        let (u, _, db) = figure1_database();
        assert_eq!(db.len(), 1);
        assert_eq!(db.total_tuples(), 4);
        assert_eq!(db.all_attributes().len(), 3);
        assert!(db.relation_named("R").is_some());
        assert!(db.relation_named("S").is_none());
        assert_eq!(db.scheme().len(), 1);
        assert_eq!(db.scheme().schemes()[0].render(&u), "R[ABC]");
    }

    #[test]
    fn active_domain_spans_all_relations() {
        let mut u = Universe::new();
        let mut s = SymbolTable::new();
        let db = DatabaseBuilder::new()
            .relation(&mut u, &mut s, "R1", &["A", "B"], &[&["x", "y"]])
            .unwrap()
            .relation(
                &mut u,
                &mut s,
                "R2",
                &["B", "C"],
                &[&["y2", "z"], &["y", "z"]],
            )
            .unwrap()
            .build();
        let b = u.lookup("B").unwrap();
        let dom = db.active_domain(b);
        assert_eq!(dom.len(), 2); // y and y2
        let a = u.lookup("A").unwrap();
        assert_eq!(db.active_domain(a).len(), 1);
    }

    #[test]
    fn weak_instance_check_accepts_supersets_and_rejects_gaps() {
        let (mut u, mut s, db) = figure1_database();
        // A copy of R over ABC is itself a weak instance (single relation).
        let r = db.relations()[0].clone();
        assert!(db.has_weak_instance(&r));
        // Removing a tuple breaks the property.
        let mut partial = Relation::new(r.scheme().clone());
        for t in r.iter().skip(1) {
            partial.insert_values(&t.to_values()).unwrap();
        }
        assert!(!db.has_weak_instance(&partial));
        // A relation over fewer attributes can never be a weak instance.
        let ab: AttrSet = vec![u.lookup("A").unwrap(), u.lookup("B").unwrap()].into();
        let small = Relation::new(RelationScheme::new("W", ab));
        assert!(!db.has_weak_instance(&small));
        // A relation over more attributes works as long as projections cover.
        let d = u.attr("D");
        let mut wide_attrs = r.scheme().attrs().clone();
        wide_attrs.insert(d);
        let mut wide = Relation::new(RelationScheme::new("W", wide_attrs));
        let filler = s.symbol("filler");
        for t in r.iter() {
            let mut vals = t.to_values();
            vals.push(filler); // D is the largest attribute id, so it sorts last.
            wide.insert_values(&vals).unwrap();
        }
        assert!(db.has_weak_instance(&wide));
    }

    #[test]
    fn builder_reorders_columns_to_scheme_order() {
        // Attributes given out of order must still land in the right columns.
        let mut u = Universe::new();
        let mut s = SymbolTable::new();
        let db = DatabaseBuilder::new()
            .relation(&mut u, &mut s, "R", &["B", "A"], &[&["b", "a"]])
            .unwrap()
            .build();
        let a = u.lookup("A").unwrap();
        let b = u.lookup("B").unwrap();
        let r = db.relation_named("R").unwrap();
        assert_eq!(s.render(r.value(0, a).unwrap()), "a");
        assert_eq!(s.render(r.value(0, b).unwrap()), "b");
    }

    #[test]
    fn render_includes_all_relations() {
        let (u, s, db) = figure1_database();
        let text = db.render(&u, &s);
        assert!(text.contains("R[ABC]"));
        assert!(text.contains("a2"));
    }
}
