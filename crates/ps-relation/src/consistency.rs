//! Consistency of a database with a set of FDs.
//!
//! Two notions from the paper:
//!
//! * **open-world / weak-instance consistency** (Sections 2.1, 4.3, 6.2):
//!   is there *some* weak instance for `d` satisfying the FDs?  Decidable in
//!   polynomial time by the chase ([`weak_instance_consistent`]).
//! * **complete-atomic-data (CAD) consistency** (Section 6.1): is there a
//!   weak instance `w` satisfying the FDs with `w[A] = d[A]` for every
//!   attribute — i.e. using *only* symbols already present in the database?
//!   Theorem 11 shows this is NP-complete; [`cad_consistent`] is an exact
//!   backtracking solver (with FD-violation pruning) intended for the small
//!   instances produced by the Theorem 11 reduction and the benchmarks.

use ps_base::{Attribute, Symbol, SymbolTable};

use crate::{chase, Database, Fd, Relation, RelationScheme};

/// Whether `db` is consistent with `fds` under the weak instance assumption
/// (Honeyman's polynomial test).
pub fn weak_instance_consistent(db: &Database, fds: &[Fd], symbols: &mut SymbolTable) -> bool {
    chase::chase_fds(db, fds, symbols).consistent
}

/// Statistics returned by the CAD solver alongside its verdict.
#[derive(Debug, Clone, Default)]
pub struct CadSearchStats {
    /// Number of cell assignments tried.
    pub assignments: usize,
    /// Number of backtracks.
    pub backtracks: usize,
}

/// The result of a CAD-consistency search.
#[derive(Debug, Clone)]
pub struct CadOutcome {
    /// Whether a CAD-respecting weak instance exists.
    pub consistent: bool,
    /// The completed weak instance, when one exists and the attribute
    /// universe is non-empty.
    pub witness: Option<Relation>,
    /// Search statistics.
    pub stats: CadSearchStats,
}

impl CadOutcome {
    /// Whether a CAD-respecting weak instance exists.
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }
}

/// Decides whether there is a weak instance `w` for `db` satisfying `fds`
/// with `w[A] = d[A]` for every attribute `A` (consistency under CAD and
/// EAP, Theorem 6b / Theorem 11).
///
/// As in the paper's NP-membership argument, it suffices to look for a weak
/// instance with exactly one row per database tuple whose free cells take
/// values from the corresponding active domains `d[A]`.
pub fn cad_consistent(db: &Database, fds: &[Fd]) -> CadOutcome {
    let attrs = db.all_attributes();
    let columns: Vec<Attribute> = attrs.iter().collect();

    // Active domains per column; if a column has an empty active domain and
    // there is at least one row, no CAD weak instance can exist.
    let domains: Vec<Vec<Symbol>> = columns.iter().map(|&a| db.active_domain(a)).collect();

    // Build the partially filled table: one row per database tuple.
    let mut rows: Vec<Vec<Option<Symbol>>> = Vec::new();
    for relation in db.relations() {
        for tuple in relation.iter() {
            let row: Vec<Option<Symbol>> = columns
                .iter()
                .map(|&a| relation.scheme().position(a).map(|p| tuple.value_at(p)))
                .collect();
            rows.push(row);
        }
    }

    let mut stats = CadSearchStats::default();

    if rows.is_empty() {
        // The empty weak instance works (and trivially has w[A] = d[A] = ∅).
        let witness = if attrs.is_empty() {
            None
        } else {
            Some(Relation::new(RelationScheme::new(
                "cad_weak_instance",
                attrs.clone(),
            )))
        };
        return CadOutcome {
            consistent: true,
            witness,
            stats,
        };
    }
    if domains.iter().any(Vec::is_empty) {
        return CadOutcome {
            consistent: false,
            witness: None,
            stats,
        };
    }

    // Column indices of each FD, for the violation check.
    let fd_cols: Vec<(Vec<usize>, Vec<usize>)> = fds
        .iter()
        .map(|fd| {
            (
                fd.lhs
                    .iter()
                    .filter_map(|a| columns.iter().position(|&c| c == a))
                    .collect(),
                fd.rhs
                    .iter()
                    .filter_map(|a| columns.iter().position(|&c| c == a))
                    .collect(),
            )
        })
        .collect();

    // The free cells, row-major.
    let free_cells: Vec<(usize, usize)> = rows
        .iter()
        .enumerate()
        .flat_map(|(r, row)| {
            row.iter()
                .enumerate()
                .filter(|(_, v)| v.is_none())
                .map(move |(c, _)| (r, c))
                .collect::<Vec<_>>()
        })
        .collect();

    let found = fill(
        &mut rows,
        &free_cells,
        0,
        &domains,
        &fd_cols,
        fds,
        &mut stats,
    );

    let witness = if found {
        let scheme = RelationScheme::new("cad_weak_instance", attrs.clone());
        let mut w = Relation::new(scheme);
        for row in &rows {
            let values: Vec<Symbol> = row.iter().map(|v| v.expect("search completed")).collect();
            w.insert_values(&values).expect("row matches scheme arity");
        }
        Some(w)
    } else {
        None
    };
    CadOutcome {
        consistent: found,
        witness,
        stats,
    }
}

/// Checks whether the partially filled `rows` contain a definite violation of
/// some FD: two rows fully agreeing on the (all-assigned) lhs columns while
/// disagreeing on some mutually assigned rhs column.
fn has_definite_violation(
    rows: &[Vec<Option<Symbol>>],
    fd_cols: &[(Vec<usize>, Vec<usize>)],
    fds: &[Fd],
) -> bool {
    for (idx, (lhs, rhs)) in fd_cols.iter().enumerate() {
        // FDs whose lhs mentions attributes outside the universe cannot fire.
        if lhs.len() != fds[idx].lhs.len() {
            continue;
        }
        for i in 0..rows.len() {
            for j in (i + 1)..rows.len() {
                let agree_on_lhs = lhs
                    .iter()
                    .all(|&c| matches!((rows[i][c], rows[j][c]), (Some(a), Some(b)) if a == b));
                if !agree_on_lhs {
                    continue;
                }
                let disagree_on_rhs = rhs
                    .iter()
                    .any(|&c| matches!((rows[i][c], rows[j][c]), (Some(a), Some(b)) if a != b));
                if disagree_on_rhs {
                    return true;
                }
            }
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn fill(
    rows: &mut Vec<Vec<Option<Symbol>>>,
    free_cells: &[(usize, usize)],
    next: usize,
    domains: &[Vec<Symbol>],
    fd_cols: &[(Vec<usize>, Vec<usize>)],
    fds: &[Fd],
    stats: &mut CadSearchStats,
) -> bool {
    if has_definite_violation(rows, fd_cols, fds) {
        return false;
    }
    if next == free_cells.len() {
        return true;
    }
    let (r, c) = free_cells[next];
    for &candidate in &domains[c] {
        stats.assignments += 1;
        rows[r][c] = Some(candidate);
        if fill(rows, free_cells, next + 1, domains, fd_cols, fds, stats) {
            return true;
        }
        stats.backtracks += 1;
    }
    rows[r][c] = None;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::DatabaseBuilder;
    use crate::fd::fd;
    use ps_base::Universe;

    struct Fixture {
        universe: Universe,
        symbols: SymbolTable,
    }

    fn fixture() -> Fixture {
        Fixture {
            universe: Universe::new(),
            symbols: SymbolTable::new(),
        }
    }

    #[test]
    fn weak_instance_consistency_matches_chase() {
        let mut f = fixture();
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R",
                &["A", "B"],
                &[&["a", "b1"], &["a", "b2"]],
            )
            .unwrap()
            .build();
        let a = f.universe.lookup("A").unwrap();
        let b = f.universe.lookup("B").unwrap();
        assert!(!weak_instance_consistent(
            &db,
            &[fd(&[a], &[b])],
            &mut f.symbols
        ));
        assert!(weak_instance_consistent(
            &db,
            &[fd(&[b], &[a])],
            &mut f.symbols
        ));
    }

    #[test]
    fn cad_consistent_when_open_world_is_but_values_align() {
        let mut f = fixture();
        // R1[AB]: (a,b); R2[BC]: (b,c).  FD B→C. The free C cell of the R1 row
        // can be filled with the existing constant c.
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "B"],
                &[&["a", "b"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R2",
                &["B", "C"],
                &[&["b", "c"]],
            )
            .unwrap()
            .build();
        let b = f.universe.lookup("B").unwrap();
        let c = f.universe.lookup("C").unwrap();
        let outcome = cad_consistent(&db, &[fd(&[b], &[c])]);
        assert!(outcome.is_consistent());
        let w = outcome.witness.unwrap();
        assert!(db.has_weak_instance(&w));
        assert!(w.satisfies_fd(&fd(&[b], &[c])));
        // CAD: the witness only uses symbols from the database.
        for attr in db.all_attributes().iter() {
            let w_dom = w.active_domain(attr).unwrap();
            let d_dom = db.active_domain(attr);
            assert!(w_dom.iter().all(|s| d_dom.contains(s)));
            assert!(d_dom.iter().all(|s| w_dom.contains(s)));
        }
    }

    #[test]
    fn cad_inconsistent_when_domains_force_a_violation() {
        let mut f = fixture();
        // R1[AB]: (a,b1), (a2,b2); R2[AC]: (a,c).  FDs: C→A and B→C, A→B.
        // Open world is fine, but under CAD the single row of R2 must take a
        // B value from {b1, b2}; A→B forces it to b1 (to agree with row (a,b1)),
        // B→C then forces row (a,b1)'s C to c, fine; but also row (a2,b2)'s C
        // must take value c (the only C value), and then C→A forces a2 = a:
        // impossible because both are fixed constants.
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R1",
                &["A", "B"],
                &[&["a", "b1"], &["a2", "b2"]],
            )
            .unwrap()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R2",
                &["A", "C"],
                &[&["a", "c"]],
            )
            .unwrap()
            .build();
        let a = f.universe.lookup("A").unwrap();
        let b = f.universe.lookup("B").unwrap();
        let c = f.universe.lookup("C").unwrap();
        let fds = vec![fd(&[c], &[a]), fd(&[b], &[c]), fd(&[a], &[b])];
        let outcome = cad_consistent(&db, &fds);
        assert!(!outcome.is_consistent());
        assert!(outcome.stats.assignments > 0);
        // The same database is consistent in the open world: fresh nulls can
        // be used instead of forcing existing constants.
        let mut symbols = f.symbols.clone();
        assert!(weak_instance_consistent(&db, &fds, &mut symbols));
    }

    #[test]
    fn cad_on_single_relation_reduces_to_fd_satisfaction() {
        let mut f = fixture();
        let db = DatabaseBuilder::new()
            .relation(
                &mut f.universe,
                &mut f.symbols,
                "R",
                &["A", "B"],
                &[&["a", "b1"], &["a", "b2"]],
            )
            .unwrap()
            .build();
        let a = f.universe.lookup("A").unwrap();
        let b = f.universe.lookup("B").unwrap();
        // A→B is violated outright: no filling can fix a complete relation.
        assert!(!cad_consistent(&db, &[fd(&[a], &[b])]).is_consistent());
        // B→A holds already.
        assert!(cad_consistent(&db, &[fd(&[b], &[a])]).is_consistent());
    }

    #[test]
    fn cad_with_empty_database_is_consistent() {
        let f = fixture();
        let db = Database::new();
        let outcome = cad_consistent(&db, &[]);
        assert!(outcome.is_consistent());
        let _ = f;
    }
}
