//! Random NAE-3SAT instance generation for the benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Clause, Formula, Literal};

/// Generates a random 3CNF formula with `num_vars` variables and
/// `num_clauses` clauses; each clause picks three distinct variables and
/// random polarities.
///
/// # Panics
/// Panics if `num_vars < 3`.
pub fn random_formula(num_vars: usize, num_clauses: usize, seed: u64) -> Formula {
    assert!(
        num_vars >= 3,
        "need at least three variables for 3-literal clauses"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let clauses = (0..num_clauses)
        .map(|_| {
            // Three distinct variables.
            let mut vars = Vec::with_capacity(3);
            while vars.len() < 3 {
                let v = rng.gen_range(0..num_vars);
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
            let lit = |var: usize, rng: &mut StdRng| {
                if rng.gen_bool(0.5) {
                    Literal::pos(var)
                } else {
                    Literal::neg(var)
                }
            };
            Clause([
                lit(vars[0], &mut rng),
                lit(vars[1], &mut rng),
                lit(vars[2], &mut rng),
            ])
        })
        .collect();
    Formula::new(num_vars, clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nae_satisfiable, nae_satisfiable_brute_force};

    #[test]
    fn generated_formulas_are_well_formed_and_deterministic() {
        let f1 = random_formula(6, 10, 99);
        let f2 = random_formula(6, 10, 99);
        assert_eq!(f1, f2);
        assert_eq!(f1.clauses.len(), 10);
        assert!(f1
            .clauses
            .iter()
            .all(|c| c.literals().iter().all(|l| l.var < 6)));
        // Clauses use three distinct variables.
        for c in &f1.clauses {
            let vars: std::collections::HashSet<_> = c.literals().iter().map(|l| l.var).collect();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn solvers_agree_on_random_instances() {
        for seed in 0..12 {
            let formula = random_formula(5, 8, seed);
            assert_eq!(
                nae_satisfiable(&formula),
                nae_satisfiable_brute_force(&formula),
                "seed {seed}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "three variables")]
    fn too_few_variables_rejected() {
        let _ = random_formula(2, 1, 0);
    }
}
