//! Exact NAE-3SAT solvers.

use crate::Formula;

/// Decides NAE-satisfiability by trying all `2^n` assignments.  Reference
/// implementation for the property tests; use [`nae_satisfiable`] elsewhere.
pub fn nae_satisfiable_brute_force(formula: &Formula) -> bool {
    let n = formula.num_vars;
    assert!(
        n < usize::BITS as usize,
        "too many variables for brute force"
    );
    (0u64..(1u64 << n)).any(|mask| {
        let assignment: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
        formula.nae_satisfied(&assignment)
    })
}

/// Decides NAE-satisfiability by backtracking with clause-violation pruning,
/// and returns a witness assignment if one exists.
pub fn nae_witness(formula: &Formula) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; formula.num_vars];
    if extend(formula, &mut assignment, 0) {
        Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// Decides NAE-satisfiability (backtracking solver).
pub fn nae_satisfiable(formula: &Formula) -> bool {
    nae_witness(formula).is_some()
}

/// Whether some clause is already *definitely* not-NAE under the partial
/// assignment (all three literals assigned and all equal).
fn definitely_violated(formula: &Formula, assignment: &[Option<bool>]) -> bool {
    formula.clauses.iter().any(|clause| {
        let values: Vec<Option<bool>> = clause
            .literals()
            .iter()
            .map(|l| assignment[l.var].map(|v| v == l.positive))
            .collect();
        values.iter().all(|v| v.is_some())
            && (values.iter().all(|v| *v == Some(true)) || values.iter().all(|v| *v == Some(false)))
    })
}

fn extend(formula: &Formula, assignment: &mut Vec<Option<bool>>, var: usize) -> bool {
    if definitely_violated(formula, assignment) {
        return false;
    }
    if var == formula.num_vars {
        return true;
    }
    for value in [false, true] {
        assignment[var] = Some(value);
        if extend(formula, assignment, var + 1) {
            return true;
        }
    }
    assignment[var] = None;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clause, Literal};

    #[test]
    fn figure3_clause_is_nae_satisfiable() {
        let formula = Formula::figure3_example();
        assert!(nae_satisfiable_brute_force(&formula));
        let witness = nae_witness(&formula).unwrap();
        assert!(formula.nae_satisfied(&witness));
    }

    #[test]
    fn unsatisfiable_instance() {
        // x0 ∨ x0 ∨ x0 can never have both a true and a false literal.
        let formula = Formula::new(
            1,
            vec![Clause([Literal::pos(0), Literal::pos(0), Literal::pos(0)])],
        );
        assert!(!nae_satisfiable_brute_force(&formula));
        assert!(!nae_satisfiable(&formula));
        assert!(nae_witness(&formula).is_none());
    }

    #[test]
    fn complementary_pair_is_always_nae() {
        // x0 ∨ ¬x0 ∨ x1 always has one true and one false among the first two.
        let formula = Formula::new(
            2,
            vec![Clause([Literal::pos(0), Literal::neg(0), Literal::pos(1)])],
        );
        assert!(nae_satisfiable(&formula));
        assert!(nae_satisfiable_brute_force(&formula));
    }

    #[test]
    fn nae_is_symmetric_under_complement() {
        // If an assignment works, its complement works too; a quick sanity
        // check that our satisfaction test respects NAE symmetry.
        let formula = Formula::new(
            3,
            vec![
                Clause([Literal::pos(0), Literal::pos(1), Literal::pos(2)]),
                Clause([Literal::neg(0), Literal::pos(1), Literal::neg(2)]),
            ],
        );
        if let Some(witness) = nae_witness(&formula) {
            let complement: Vec<bool> = witness.iter().map(|v| !v).collect();
            assert!(formula.nae_satisfied(&complement));
        }
    }

    #[test]
    fn solvers_agree_on_small_instances() {
        // A handful of structured instances.
        let instances = vec![
            Formula::new(
                3,
                vec![
                    Clause([Literal::pos(0), Literal::pos(1), Literal::pos(2)]),
                    Clause([Literal::neg(0), Literal::neg(1), Literal::neg(2)]),
                ],
            ),
            Formula::new(
                2,
                vec![
                    Clause([Literal::pos(0), Literal::pos(0), Literal::pos(1)]),
                    Clause([Literal::pos(0), Literal::pos(0), Literal::neg(1)]),
                ],
            ),
            Formula::figure3_example(),
        ];
        for formula in instances {
            assert_eq!(
                nae_satisfiable(&formula),
                nae_satisfiable_brute_force(&formula),
                "{formula}"
            );
        }
    }
}
