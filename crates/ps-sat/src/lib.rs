//! # ps-sat
//!
//! A small NOT-ALL-EQUAL-3SAT substrate.
//!
//! Theorem 11 of the paper proves that testing consistency of a database and
//! a set of functional partition dependencies under the complete-atomic-data
//! and equal-atomic-population assumptions is NP-complete, by reduction from
//! NOT-ALL-EQUAL-3SAT: given a 3CNF formula, is there a truth assignment
//! under which every clause has at least one true and at least one false
//! literal?
//!
//! This crate provides the formula types, exact solvers (exhaustive and
//! backtracking, cross-checked in tests) and random instance generators used
//! by the Figure 3 reproduction and the experiment E6 benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod generate;
mod solver;

pub use cnf::{Clause, Formula, Literal};
pub use generate::random_formula;
pub use solver::{nae_satisfiable, nae_satisfiable_brute_force, nae_witness};
