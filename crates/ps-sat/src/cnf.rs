//! 3CNF formulas.

use std::fmt;

/// A literal: a variable index together with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Literal {
    /// Zero-based variable index.
    pub var: usize,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Literal {
    /// The positive literal of variable `var`.
    pub fn pos(var: usize) -> Self {
        Literal {
            var,
            positive: true,
        }
    }

    /// The negative literal of variable `var`.
    pub fn neg(var: usize) -> Self {
        Literal {
            var,
            positive: false,
        }
    }

    /// Evaluates the literal under an assignment.
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var] == self.positive
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A clause of exactly three literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clause(pub [Literal; 3]);

impl Clause {
    /// The three literals.
    pub fn literals(&self) -> &[Literal; 3] {
        &self.0
    }

    /// Whether the clause is *not-all-equal* satisfied: at least one literal
    /// true and at least one false.
    pub fn nae_satisfied(&self, assignment: &[bool]) -> bool {
        let values: Vec<bool> = self.0.iter().map(|l| l.eval(assignment)).collect();
        values.iter().any(|&v| v) && values.iter().any(|&v| !v)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} ∨ {} ∨ {})", self.0[0], self.0[1], self.0[2])
    }
}

/// A 3CNF formula: a number of variables and a list of clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Formula {
    /// Number of variables (`x0 … x(n-1)`).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Clause>,
}

impl Formula {
    /// Creates a formula, checking that every literal's variable is in range.
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Self {
        assert!(
            clauses.iter().all(|c| c.0.iter().all(|l| l.var < num_vars)),
            "clause mentions a variable outside the declared range"
        );
        Formula { num_vars, clauses }
    }

    /// Whether `assignment` NAE-satisfies every clause.
    pub fn nae_satisfied(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment arity mismatch");
        self.clauses.iter().all(|c| c.nae_satisfied(assignment))
    }

    /// The Figure 3 example clause `c₁ = x₁ ∨ x₂ ∨ ¬x₃` over four variables
    /// (one-based in the paper; zero-based here).
    pub fn figure3_example() -> Self {
        Formula::new(
            4,
            vec![Clause([Literal::pos(0), Literal::pos(1), Literal::neg(2)])],
        )
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.clauses.iter().map(|c| c.to_string()).collect();
        write!(f, "{}", parts.join(" ∧ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_evaluation() {
        let assignment = vec![true, false];
        assert!(Literal::pos(0).eval(&assignment));
        assert!(!Literal::neg(0).eval(&assignment));
        assert!(!Literal::pos(1).eval(&assignment));
        assert!(Literal::neg(1).eval(&assignment));
        assert_eq!(Literal::pos(0).to_string(), "x0");
        assert_eq!(Literal::neg(1).to_string(), "¬x1");
    }

    #[test]
    fn clause_nae_satisfaction() {
        let clause = Clause([Literal::pos(0), Literal::pos(1), Literal::neg(2)]);
        // All literals true: not NAE-satisfied.
        assert!(!clause.nae_satisfied(&[true, true, false]));
        // All literals false: not NAE-satisfied.
        assert!(!clause.nae_satisfied(&[false, false, true]));
        // Mixed: NAE-satisfied.
        assert!(clause.nae_satisfied(&[true, false, false]));
        assert!(clause.to_string().contains("∨"));
    }

    #[test]
    fn formula_satisfaction_and_display() {
        let formula = Formula::figure3_example();
        assert_eq!(formula.num_vars, 4);
        assert!(formula.nae_satisfied(&[true, false, false, false]));
        assert!(!formula.nae_satisfied(&[true, true, false, false]));
        assert!(formula.to_string().contains("∨"));
    }

    #[test]
    #[should_panic(expected = "outside the declared range")]
    fn out_of_range_variables_are_rejected() {
        let _ = Formula::new(
            1,
            vec![Clause([Literal::pos(0), Literal::pos(1), Literal::pos(0)])],
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn assignment_arity_is_checked() {
        let formula = Formula::figure3_example();
        let _ = formula.nae_satisfied(&[true]);
    }
}
